//! Crash-fault injection, deterministic replay, and long-history
//! verification via the linearization-point monitor.
//!
//! The paper's §1 motivates wait-freedom with fault tolerance: "every
//! process p completes its operation … regardless of whether other
//! processes are slow, fast or have crashed." These tests crash processes
//! at arbitrary points — including inside the helping protocol — and
//! assert the survivors are completely unaffected.

use simsched::interp::{ll_step_bound, SimOp};
use simsched::runner::{run, run_with_crashes, RunConfig, Sim};
use simsched::sched::{RandomSched, ReplaySched, RoundRobin, StarveVictim};
use simsched::wg::{check_linearizable, CheckConfig};

fn inc_program(rounds: usize) -> Vec<SimOp> {
    let mut ops = Vec::new();
    for _ in 0..rounds {
        ops.push(SimOp::Ll);
        ops.push(SimOp::ScBump(1));
    }
    ops
}

// ———————————————————— crash-fault injection ————————————————————

#[test]
fn survivors_unaffected_by_crash_sweep() {
    // Crash process 0 at every possible early step; the other processes
    // must always finish, stay linearizable, and respect step bounds.
    let w = 2;
    for crash_at in (0..120).step_by(7) {
        let programs = vec![inc_program(4); 3];
        let sim = Sim::new(w, &[0, 0], programs);
        let mut sched = RoundRobin::default();
        let report = run_with_crashes(sim, &mut sched, &RunConfig::default(), &[(0, crash_at)])
            .unwrap_or_else(|f| panic!("crash_at={crash_at}: {f}"));
        assert!(report.completed, "crash_at={crash_at}: survivors did not finish");
        assert!(report.max_op_steps.ll <= ll_step_bound(w));
        check_linearizable(&report.history, &[0, 0], CheckConfig::default())
            .unwrap_or_else(|e| panic!("crash_at={crash_at}: {e}"));
    }
}

#[test]
fn crash_while_announced_leaks_buffer_but_nothing_else() {
    // The victim announces (line 1) and crashes mid-copy. A helper will
    // donate a buffer to the dead process — which is lost (the paper's
    // model has no failure detection), but invariants I1/I2/Lemma 3 and
    // linearizability must survive, and writers keep making progress
    // through thousands of further SCs.
    let w = 4;
    let mut programs = vec![vec![SimOp::Ll]];
    programs.push(inc_program(60));
    programs.push(inc_program(60));
    let sim = Sim::new(w, &vec![0u64; w], programs);
    // Starve the victim so it is mid-LL when crashed; crash at step 50.
    let mut sched = StarveVictim::new(0, 10);
    let cfg = RunConfig { record_history: false, ..RunConfig::default() };
    let report = run_with_crashes(sim, &mut sched, &cfg, &[(0, 50)]).unwrap();
    assert!(report.completed, "writers must finish despite the dead announced reader");
    assert_eq!(report.final_value[0], report.x_changes, "counter stays exact");
}

#[test]
fn multiple_crashes_leave_one_survivor() {
    let programs = vec![inc_program(10); 4];
    let sim = Sim::new(1, &[0], programs);
    let mut sched = RandomSched::new(99);
    // Three processes die at various points; the last one must still
    // complete all 10 rounds (every SC eventually succeeds solo).
    let report =
        run_with_crashes(sim, &mut sched, &RunConfig::default(), &[(0, 30), (1, 55), (2, 80)])
            .unwrap();
    assert!(report.completed);
    check_linearizable(&report.history, &[0], CheckConfig::default()).unwrap();
    // The survivor performed at least its 10 successful SCs.
    assert!(report.x_changes >= 10, "x_changes = {}", report.x_changes);
}

#[test]
fn crash_between_ll_and_sc_holds_link_forever() {
    // p0 completes an LL, then crashes before its SC. Its link is never
    // consumed; everyone else proceeds normally.
    let programs = vec![
        vec![SimOp::Ll, SimOp::ScBump(1)], // will crash after the LL finishes
        inc_program(20),
    ];
    let w = 1;
    let sim = Sim::new(w, &[0], programs);
    let mut sched = RoundRobin::default();
    // An LL at W=1 takes ≤ 12 steps; p0 steps at parity 0 under round-robin
    // with 2 procs, so by global step 30 its LL is done. Crash it there.
    let report = run_with_crashes(sim, &mut sched, &RunConfig::default(), &[(0, 30)]).unwrap();
    assert!(report.completed);
    check_linearizable(&report.history, &[0], CheckConfig::default()).unwrap();
}

// ———————————————————— deterministic replay ————————————————————

#[test]
fn recorded_schedule_replays_identically() {
    let make_sim = || Sim::new(2, &[5, 6], vec![inc_program(5); 3]);
    let cfg = RunConfig { record_schedule: true, ..RunConfig::default() };
    let original = run(make_sim(), &mut RandomSched::new(0xBEEF), &cfg).unwrap();
    assert!(original.completed);
    assert!(!original.schedule.is_empty());

    let mut replay = ReplaySched::new(original.schedule.clone());
    let replayed = run(make_sim(), &mut replay, &cfg).unwrap();
    assert_eq!(original.history, replayed.history, "replay must reproduce the history");
    assert_eq!(original.final_value, replayed.final_value);
    assert_eq!(original.x_changes, replayed.x_changes);
    assert_eq!(original.schedule, replayed.schedule);
}

#[test]
fn replay_with_crashes_reproduces() {
    let make_sim = || Sim::new(1, &[0], vec![inc_program(6); 3]);
    let cfg = RunConfig { record_schedule: true, ..RunConfig::default() };
    let crashes = [(1usize, 40u64)];
    let original = run_with_crashes(make_sim(), &mut RandomSched::new(7), &cfg, &crashes).unwrap();
    let mut replay = ReplaySched::new(original.schedule.clone());
    let replayed = run_with_crashes(make_sim(), &mut replay, &cfg, &crashes).unwrap();
    assert_eq!(original.history, replayed.history);
}

// ———————————————————— long histories via the LP monitor ————————————————————

#[test]
fn lp_monitor_validates_hundred_thousand_op_histories() {
    // Far beyond what Wing–Gong search could check: ~100k operations,
    // every one validated in O(1) against the paper's LP argument
    // (Lemmas 2/4/5/6/8/10/11), plus I1/I2/Lemma 3 on every step.
    let n = 4;
    let w = 3;
    let programs = vec![inc_program(8_500); n]; // 17k ops per proc
    let sim = Sim::new(w, &vec![0u64; w], programs);
    let cfg = RunConfig {
        record_history: false, // too long for WG; the LP monitor carries it
        ..RunConfig::default()
    };
    let report = run(sim, &mut RandomSched::new(4242), &cfg).unwrap();
    assert!(report.completed);
    assert_eq!(report.final_value[0], report.x_changes);
    // Contention makes many SCs fail, but a substantial fraction must land.
    assert!(report.x_changes >= 1_000, "x_changes = {}", report.x_changes);
}

#[test]
fn lp_monitor_validates_starved_long_runs() {
    let n = 3;
    let w = 8;
    let mut programs = vec![inc_program(4_000); n];
    programs[0] = vec![SimOp::Ll; 300];
    let sim = Sim::new(w, &vec![0u64; w], programs);
    let cfg = RunConfig { record_history: false, ..RunConfig::default() };
    let report = run(sim, &mut StarveVictim::new(0, 150), &cfg).unwrap();
    assert!(report.completed);
    assert!(report.helped_lls > 0, "starved LLs must be helped in a long run");
    assert!(report.max_op_steps.ll <= ll_step_bound(w));
}
