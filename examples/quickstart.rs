//! Quickstart: the multiword LL/SC object in five minutes.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Demonstrates the Figure 1 semantics — LL, SC, VL — on a 4-word object
//! shared by 3 processes, then the canonical read-modify-write loop from
//! the paper's introduction, and finally what the instrumentation
//! counters expose.

use mwllsc::MwLlSc;

fn main() {
    // A 4-word shared variable for 3 processes, initially [1, 2, 3, 4].
    // `N` is fixed at construction; each process claims its own handle.
    let obj = MwLlSc::new(3, 4, &[1, 2, 3, 4]);
    let mut handles = obj.handles();
    let mut h2 = handles.pop().expect("handle for process 2");
    let mut h1 = handles.pop().expect("handle for process 1");
    let mut h0 = handles.pop().expect("handle for process 0");

    // —— LL / SC: atomic multiword update ————————————————————————————
    let mut val = [0u64; 4];
    h0.ll(&mut val);
    println!("p0 LL -> {val:?}");
    val[0] += 100;
    val[3] = 99;
    assert!(h0.sc(&val), "no interference: SC succeeds");
    println!("p0 SC [101, 2, 3, 99] -> success");

    // —— SC fails when someone else committed first ————————————————————
    h1.ll(&mut val); // p1 links
    h2.ll(&mut val); // p2 links to the same value
    assert!(h2.sc(&[0, 0, 0, 0]), "p2 wins");
    assert!(!h1.sc(&[7, 7, 7, 7]), "p1 loses: p2's SC broke the link");
    println!("p2 SC wins, p1 SC correctly fails");

    // —— VL: validate without writing ——————————————————————————————
    h1.ll(&mut val);
    assert!(h1.vl(), "nothing changed since p1's LL");
    h2.ll(&mut val);
    assert!(h2.sc(&[5, 5, 5, 5]));
    assert!(!h1.vl(), "p2's successful SC invalidates p1's link");
    println!("VL tracks interference correctly");

    // —— The paper's intro pattern: any RMW in a short LL/SC loop ————————
    // fetch&add 1 to word 0, atomically with a checksum in word 3:
    loop {
        h0.ll(&mut val);
        val[0] += 1;
        val[3] = val[0] ^ val[1] ^ val[2];
        if h0.sc(&val) {
            break;
        }
    }
    h1.ll(&mut val);
    assert_eq!(val[3], val[0] ^ val[1] ^ val[2]);
    println!("atomic multiword fetch&add with checksum: {val:?}");

    // —— Introspection ————————————————————————————————————————
    let stats = obj.stats();
    println!(
        "stats: {} LLs, {} SC attempts ({} successful), {} VLs",
        stats.ll_ops, stats.sc_attempts, stats.sc_successes, stats.vl_ops
    );
    let space = obj.space();
    println!(
        "space: {} shared words for N={}, W={} (3NW buffer words + {} LL/SC cells)",
        space.shared_words(),
        space.n,
        space.w,
        space.llsc_cells
    );
}
