//! The shared `W`-word LL/SC/VL object (Figure 2 of the paper): shared
//! state, construction, and space accounting.

use std::sync::Arc;

use llsc_word::{NewCell, TaggedLlSc};

use crate::buffer::BufferPool;
use crate::handle::Handle;
use crate::layout::{HelpRecord, Layout, XRecord};
use crate::pad::CachePadded;
use crate::registry::{AttachError, SlotRegistry};
use crate::stats::{Counters, Stats};

/// How [`Handle::ll`](crate::Handle::ll) obtains a consistent value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LlStrategy {
    /// The paper's wait-free LL (lines 1–11): announce, read, consume help
    /// if overtaken. Every LL completes in `O(W)` of its own steps.
    #[default]
    WaitFree,
    /// Ablation: a plain read–validate retry loop with no announcement and
    /// no helping. Lock-free but **not** wait-free — a reader can starve
    /// under a writer storm. Exists to measure what the helping machinery
    /// costs and what it buys (experiments E7/E8 and the ablation benches).
    RetryLoop,
}

/// Errors from [`MwLlSc::try_new`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `n` was zero.
    ZeroProcesses,
    /// `w` was zero.
    ZeroWords,
    /// The initial value slice length differs from `w`.
    WrongInitLen {
        /// Configured word count `W`.
        expected: usize,
        /// Length of the supplied initial value.
        got: usize,
    },
    /// `n` is so large the packed `xtype` would leave fewer than 16 tag
    /// bits in the 64-bit substrate word (`n > ~2^22`).
    TooManyProcesses,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroProcesses => write!(f, "process count must be at least 1"),
            Self::ZeroWords => write!(f, "word count W must be at least 1"),
            Self::WrongInitLen { expected, got } => {
                write!(f, "initial value has {got} words, expected W = {expected}")
            }
            Self::TooManyProcesses => {
                write!(f, "process count too large for a 64-bit tagged substrate word")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ConfigError {
    /// Checks the construction rules every implementation shares — `n` and
    /// `w` nonzero, `initial` of length `w`, `n` within `max_processes` —
    /// so factories and backends validate identically instead of each
    /// re-deriving the matrix.
    pub fn validate(n: usize, w: usize, initial: &[u64], max_processes: usize) -> Result<(), Self> {
        if n == 0 {
            return Err(Self::ZeroProcesses);
        }
        if w == 0 {
            return Err(Self::ZeroWords);
        }
        if initial.len() != w {
            return Err(Self::WrongInitLen { expected: w, got: initial.len() });
        }
        if n > max_processes {
            return Err(Self::TooManyProcesses);
        }
        Ok(())
    }
}

/// Errors from [`MwLlSc::claim`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClaimError {
    /// The requested process id is `>= N`.
    OutOfRange {
        /// The invalid id.
        p: usize,
        /// The configured process count.
        n: usize,
    },
    /// The process id is currently leased by a live [`Handle`]. Dropping
    /// that handle frees the slot for a later `claim` or `attach`.
    AlreadyClaimed {
        /// The contested id.
        p: usize,
    },
}

impl std::fmt::Display for ClaimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OutOfRange { p, n } => write!(f, "process id {p} out of range 0..{n}"),
            Self::AlreadyClaimed { p } => write!(f, "process id {p} already claimed"),
        }
    }
}

impl std::error::Error for ClaimError {}

/// Exact space usage of one [`MwLlSc`] instance, in 64-bit words.
///
/// This is what experiment E1 tabulates: the paper's headline is that the
/// total is `Θ(NW)` (buffers dominate) versus Anderson–Moir's `Θ(N²W)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct SpaceReport {
    /// Process count `N`.
    pub n: usize,
    /// Words per value, `W`.
    pub w: usize,
    /// Words held in value buffers: `3N · W`.
    pub buffer_words: usize,
    /// Word-sized LL/SC cells: `X` + `Bank[2N]` + `Help[N]` = `3N + 1`.
    pub llsc_cells: usize,
    /// Per-process persistent local words (`mybuf`, the saved `xtype`
    /// link): `O(1)` each, counted for completeness.
    pub per_process_words: usize,
}

impl SpaceReport {
    /// Total shared words: buffers + one word per LL/SC cell.
    #[must_use]
    pub fn shared_words(&self) -> usize {
        self.buffer_words + self.llsc_cells
    }

    /// Grand total including per-process local state.
    #[must_use]
    pub fn total_words(&self) -> usize {
        self.shared_words() + self.n * self.per_process_words
    }
}

/// A wait-free `N`-process, `W`-word LL/SC/VL shared variable.
///
/// This is the algorithm of Jayanti & Petrovic (Figure 2 of TR2004-523 /
/// ICDCS 2005), implemented line-for-line on top of single-word LL/SC
/// objects ([`llsc_word`]). `LL` and `SC` complete in `O(W)` steps, `VL`
/// in `O(1)`, regardless of what other processes do (wait-freedom); space
/// is `O(NW)` words (see [`SpaceReport`]).
///
/// The type parameter `C` selects the single-word substrate; the default
/// [`TaggedLlSc`] packs value + tag into one `AtomicU64`.
///
/// # Handles are leases
///
/// Each of the `N` processes interacts through its own [`Handle`]; a
/// handle is `Send` but deliberately not `Clone` — the algorithm (like the
/// paper's model) requires one outstanding operation per process. The `N`
/// process slots are *leased*, not claimed forever: dropping a handle
/// returns its slot (together with the buffer the slot owns — the paper's
/// space invariant) for a later [`claim`](Self::claim) or
/// [`attach`](Self::attach), so thread pools can churn workers without
/// exhausting the id space. Pick the acquisition style that fits:
///
/// * [`claim(p)`](Self::claim) — lease a *specific* pinned id;
/// * [`handles()`](Self::handles) — lease all `N` at once, in order;
/// * [`attach()`](Self::attach) — lease *any* free slot (lock-free scan);
/// * [`with(f)`](Self::with) — run a closure on a thread-cached
///   attachment, so pool code never tracks ids at all.
///
/// # Examples
///
/// ```
/// use mwllsc::MwLlSc;
///
/// // A 4-word object shared by 3 processes, initially [1, 2, 3, 4].
/// let obj = MwLlSc::new(3, 4, &[1, 2, 3, 4]);
/// let mut handles = obj.handles();
/// let mut h0 = handles.remove(0);
///
/// let mut val = [0u64; 4];
/// h0.ll(&mut val);
/// assert_eq!(val, [1, 2, 3, 4]);
/// val[0] += 10;
/// assert!(h0.sc(&val)); // no interference: the SC succeeds
/// ```
pub struct MwLlSc<C: NewCell = TaggedLlSc> {
    pub(crate) layout: Layout,
    pub(crate) w: usize,
    /// `X`: the tag of `O`'s current value — `(buf, seq)` packed. Hit by
    /// every LL, SC and VL of every process, so it gets its own padded
    /// cache-line pair.
    pub(crate) x: CachePadded<C>,
    /// `Bank[0..2N-1]`: buffer index per sequence number. Deliberately
    /// *not* padded: entries are touched once per successful SC (plus rare
    /// lazy fix-ups), and padding them would multiply the `O(N)` cell
    /// footprint by 16 for no contended-path win.
    pub(crate) bank: Box<[C]>,
    /// `Help[0..N-1]`: helping mailboxes — `(helpme, buf)` packed. Each is
    /// padded: process `p` writes `Help[p]` on *every* LL (the line-1
    /// announcement), and without padding that write would invalidate the
    /// cache line holding its neighbours' mailboxes — false sharing on the
    /// hottest per-process word in the algorithm.
    pub(crate) help: Box<[CachePadded<C>]>,
    /// `BUF[0..3N-1]`: the value buffers.
    pub(crate) bufs: BufferPool,
    pub(crate) counters: Counters,
    pub(crate) strategy: LlStrategy,
    registry: SlotRegistry,
}

impl<C: NewCell> std::fmt::Debug for MwLlSc<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MwLlSc")
            .field("n", &self.layout.n())
            .field("w", &self.w)
            .field("strategy", &self.strategy)
            .finish_non_exhaustive()
    }
}

impl MwLlSc<TaggedLlSc> {
    /// Creates an object for `n` processes and `w`-word values with the
    /// default tagged-CAS substrate and the paper's wait-free LL.
    ///
    /// # Panics
    ///
    /// Panics on the conditions [`try_new`](Self::try_new) reports as
    /// errors.
    #[must_use]
    pub fn new(n: usize, w: usize, initial: &[u64]) -> Arc<Self> {
        Self::try_new(n, w, initial).unwrap_or_else(|e| panic!("MwLlSc::new: {e}"))
    }

    /// Creates an object with the default substrate, reporting
    /// configuration problems as errors.
    pub fn try_new(n: usize, w: usize, initial: &[u64]) -> Result<Arc<Self>, ConfigError> {
        Self::try_new_in(n, w, initial)
    }

    /// Creates an object with the default substrate and an explicit
    /// [`LlStrategy`] (ablation knob).
    pub fn try_with_strategy(
        n: usize,
        w: usize,
        initial: &[u64],
        strategy: LlStrategy,
    ) -> Result<Arc<Self>, ConfigError> {
        Self::try_with_strategy_in(n, w, initial, strategy)
    }
}

impl<C: NewCell> MwLlSc<C> {
    /// Creates an object over the substrate `C`, reporting configuration
    /// problems as errors.
    pub fn try_new_in(n: usize, w: usize, initial: &[u64]) -> Result<Arc<Self>, ConfigError> {
        Self::try_with_strategy_in(n, w, initial, LlStrategy::WaitFree)
    }

    /// Creates an object over the substrate `C` with an explicit
    /// [`LlStrategy`].
    pub fn try_with_strategy_in(
        n: usize,
        w: usize,
        initial: &[u64],
        strategy: LlStrategy,
    ) -> Result<Arc<Self>, ConfigError> {
        ConfigError::validate(n, w, initial, Layout::MAX_PROCESSES)?;
        let layout = Layout::new(n);

        // Initialization block of Figure 2:
        //   X = (0, 0); BUF[0] = initial value of O;
        //   Bank[k] = k for k in 0..2N; mybuf_p = 2N + p; Help[p] = (0, _).
        let x = CachePadded::new(C::new_cell(
            layout.x_max(),
            layout.pack_x(XRecord { buf: 0, seq: 0 }),
        ));
        let bank: Box<[C]> =
            (0..layout.num_seqs()).map(|k| C::new_cell(layout.buf_max(), k as u64)).collect();
        let help: Box<[CachePadded<C>]> = (0..n)
            .map(|_| {
                CachePadded::new(C::new_cell(
                    layout.help_max(),
                    layout.pack_help(HelpRecord { helpme: false, buf: 0 }),
                ))
            })
            .collect();
        let bufs = BufferPool::new(layout.num_buffers(), w);
        bufs.get(0).copy_from(initial);

        // Label every shared cell with its algorithmic role so the access
        // logs of model-checked builds read like the paper (no-ops in
        // normal builds).
        {
            x.model_label("X", 0, 0);
            for (k, cell) in bank.iter().enumerate() {
                cell.model_label("Bank", k as u32, 0);
            }
            for (p, cell) in help.iter().enumerate() {
                cell.model_label("Help", p as u32, 0);
            }
            bufs.model_label();
        }

        Ok(Arc::new(Self {
            layout,
            w,
            x,
            bank,
            help,
            bufs,
            counters: Counters::default(),
            strategy,
            registry: SlotRegistry::for_object(n, layout.num_seqs()),
        }))
    }

    /// Number of processes `N`.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.layout.n()
    }

    /// Words per value, `W`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }

    /// The configured LL strategy.
    #[must_use]
    pub fn strategy(&self) -> LlStrategy {
        self.strategy
    }

    /// Leases the [`Handle`] for the *specific* process id `p`.
    ///
    /// Fails while another live handle holds the slot; dropping that
    /// handle frees it for re-claiming. Use this when the caller pins
    /// process ids itself (the paper's static model); pool code that does
    /// not care which id it gets should use [`attach`](Self::attach) or
    /// [`with`](Self::with) instead.
    ///
    /// # Examples
    ///
    /// ```
    /// use mwllsc::MwLlSc;
    ///
    /// let obj = MwLlSc::new(2, 1, &[0]);
    /// let h = obj.claim(0).unwrap();
    /// assert!(obj.claim(0).is_err(), "slot 0 is leased");
    /// drop(h);
    /// assert!(obj.claim(0).is_ok(), "dropping the handle freed the slot");
    /// ```
    pub fn claim(self: &Arc<Self>, p: usize) -> Result<Handle<C>, ClaimError> {
        let n = self.layout.n();
        if p >= n {
            return Err(ClaimError::OutOfRange { p, n });
        }
        match self.registry.lease_exact(p) {
            Some(mybuf) => Ok(Handle::new(Arc::clone(self), p, mybuf)),
            None => Err(ClaimError::AlreadyClaimed { p }),
        }
    }

    /// Leases a handle for *any* free process slot (lock-free scan over
    /// the slot registry).
    ///
    /// This is the churn-friendly acquisition path: worker threads attach
    /// on demand and release by dropping the handle, and the slot carries
    /// its owned buffer (`mybuf`) across lease generations, so the space
    /// bound of the paper (`3NW + 3N + 1` shared words) is unaffected by
    /// any amount of attach/drop traffic.
    ///
    /// # Errors
    ///
    /// [`AttachError::Exhausted`] when all `N` slots are leased by live
    /// handles — the caller can retry after another handle drops, or size
    /// `n` to the worst-case number of *concurrent* operations.
    ///
    /// # Examples
    ///
    /// ```
    /// use mwllsc::MwLlSc;
    ///
    /// let obj = MwLlSc::new(2, 1, &[7]);
    /// let mut a = obj.attach().unwrap();
    /// let b = obj.attach().unwrap();
    /// assert!(obj.attach().is_err(), "both slots leased");
    /// drop(b);
    /// let mut c = obj.attach().unwrap(); // b's slot, recycled
    /// let mut v = [0u64];
    /// a.ll(&mut v);
    /// assert!(a.sc(&[v[0] + 1]));
    /// c.ll(&mut v);
    /// assert_eq!(v, [8]);
    /// ```
    pub fn attach(self: &Arc<Self>) -> Result<Handle<C>, AttachError> {
        match self.registry.lease_any() {
            Some((p, mybuf)) => Ok(Handle::new(Arc::clone(self), p, mybuf)),
            None => Err(AttachError::Exhausted { n: self.layout.n() }),
        }
    }

    /// Leases all `N` handles at once, in process-id order.
    ///
    /// # Panics
    ///
    /// Panics if any slot is already leased.
    #[must_use]
    pub fn handles(self: &Arc<Self>) -> Vec<Handle<C>> {
        (0..self.layout.n())
            .map(|p| self.claim(p).unwrap_or_else(|e| panic!("handles(): {e}")))
            .collect()
    }

    /// Number of process slots currently leased by live handles.
    #[must_use]
    pub fn live_leases(&self) -> usize {
        self.registry.live()
    }

    /// Returns slot `p` with its current `mybuf`; called by `Handle::drop`.
    pub(crate) fn release_slot(&self, p: usize, mybuf: u32) {
        self.registry.release(p, mybuf);
    }

    /// A snapshot of the instrumentation counters.
    #[must_use]
    pub fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    /// 64-bit words currently held in the substrate cells' reclamation
    /// backlog (retired but not yet freed), summed over `X`, `Bank`, and
    /// `Help`. Zero for the default tagged substrate; bounded (and
    /// typically tiny — these cells see one retire per successful SC at
    /// most) for the epoch-pointer substrate. Reported through
    /// [`MwHandle::space`](crate::MwHandle::space) so the estimate never
    /// under-counts what the process is holding.
    #[must_use]
    pub fn substrate_retired_words(&self) -> usize {
        use llsc_word::LlScCell;
        self.x.retired_words()
            + self.bank.iter().map(LlScCell::retired_words).sum::<usize>()
            + self.help.iter().map(|c| c.retired_words()).sum::<usize>()
    }

    /// Exact space usage in 64-bit words.
    #[must_use]
    pub fn space(&self) -> SpaceReport {
        SpaceReport {
            n: self.layout.n(),
            w: self.w,
            buffer_words: self.bufs.words(),
            llsc_cells: 1 + self.bank.len() + self.help.len(),
            // mybuf + packed xtype snapshot + link + flag, rounded up.
            per_process_words: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(MwLlSc::try_new(0, 1, &[0]).unwrap_err(), ConfigError::ZeroProcesses);
        assert_eq!(MwLlSc::try_new(1, 0, &[]).unwrap_err(), ConfigError::ZeroWords);
        assert_eq!(
            MwLlSc::try_new(1, 2, &[0]).unwrap_err(),
            ConfigError::WrongInitLen { expected: 2, got: 1 }
        );
        assert!(MwLlSc::try_new(2, 2, &[5, 6]).is_ok());
    }

    #[test]
    fn claim_is_exclusive_while_leased() {
        let obj = MwLlSc::new(2, 1, &[0]);
        let h0 = obj.claim(0).unwrap();
        assert_eq!(obj.claim(0).unwrap_err(), ClaimError::AlreadyClaimed { p: 0 });
        let _h1 = obj.claim(1).unwrap();
        assert_eq!(obj.claim(2).unwrap_err(), ClaimError::OutOfRange { p: 2, n: 2 });
        drop(h0);
        assert!(obj.claim(0).is_ok(), "dropping the lease frees the id");
    }

    #[test]
    fn concurrent_claims_grant_each_id_exactly_once() {
        // Many threads race to claim the same small id space; every id
        // must be granted to exactly one winner. Handles are held until
        // the end so no slot is released mid-race.
        let n = 4;
        let obj = MwLlSc::new(n, 1, &[0]);
        let mut joins = Vec::new();
        for _ in 0..16 {
            let obj = Arc::clone(&obj);
            joins.push(std::thread::spawn(move || {
                let mut won = Vec::new();
                for p in 0..n {
                    if let Ok(h) = obj.claim(p) {
                        won.push(h);
                    }
                }
                won
            }));
        }
        // Keep every won handle alive until all threads have finished, so
        // no slot is released (and re-won) mid-tally.
        let held: Vec<Vec<Handle>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let mut winners: Vec<usize> = held.iter().flatten().map(Handle::process_id).collect();
        winners.sort_unstable();
        assert_eq!(winners, (0..n).collect::<Vec<_>>(), "each id claimed exactly once");
    }

    #[test]
    fn attach_leases_any_free_slot() {
        let obj = MwLlSc::new(3, 1, &[0]);
        let a = obj.attach().unwrap();
        let b = obj.attach().unwrap();
        let c = obj.attach().unwrap();
        let mut ids = [a.process_id(), b.process_id(), c.process_id()];
        ids.sort_unstable();
        assert_eq!(ids, [0, 1, 2]);
        assert_eq!(obj.attach().unwrap_err(), AttachError::Exhausted { n: 3 });
        assert_eq!(obj.live_leases(), 3);
        drop(b);
        assert_eq!(obj.live_leases(), 2);
        let d = obj.attach().expect("freed slot is attachable");
        let _ = d.process_id();
    }

    #[test]
    fn lease_reuse_preserves_buffer_ownership_and_space() {
        // Churn a single slot through many lease generations, each doing
        // real SCs (which *exchange* buffer ownership via line 20). The
        // space report — and with it the paper's 3NW + 3N + 1 invariant —
        // must be byte-identical after any amount of churn.
        let obj = MwLlSc::new(2, 2, &[0, 0]);
        let before = obj.space();
        for gen in 0..100u64 {
            let mut h = obj.attach().unwrap();
            let mut v = [0u64; 2];
            h.ll(&mut v);
            assert_eq!(v, [gen, gen]);
            assert!(h.sc(&[gen + 1, gen + 1]));
        }
        assert_eq!(obj.space(), before);
        assert_eq!(obj.space().shared_words(), 3 * 2 * 2 + 3 * 2 + 1);
        assert_eq!(obj.live_leases(), 0);
    }

    #[test]
    fn handles_returns_all_in_order() {
        let obj = MwLlSc::new(3, 1, &[0]);
        let hs = obj.handles();
        assert_eq!(hs.len(), 3);
        for (i, h) in hs.iter().enumerate() {
            assert_eq!(h.process_id(), i);
        }
    }

    #[test]
    fn space_formula_matches_paper() {
        // Shared space must be exactly 3NW (buffers) + 3N + 1 (cells).
        for (n, w) in [(1usize, 1usize), (2, 4), (8, 16), (32, 64)] {
            let obj = MwLlSc::new(n, w, &vec![0; w]);
            let s = obj.space();
            assert_eq!(s.buffer_words, 3 * n * w);
            assert_eq!(s.llsc_cells, 3 * n + 1);
            assert_eq!(s.shared_words(), 3 * n * w + 3 * n + 1);
        }
    }

    #[test]
    fn space_is_linear_in_n() {
        // Doubling N must (at most) double shared space + O(1): the O(NW)
        // claim, checked mechanically.
        let w = 16;
        let s1 = MwLlSc::new(8, w, &vec![0; w]).space().shared_words();
        let s2 = MwLlSc::new(16, w, &vec![0; w]).space().shared_words();
        assert!(s2 <= 2 * s1 + 2, "s1={s1} s2={s2}");
    }

    #[test]
    fn error_messages_render() {
        let e = ConfigError::WrongInitLen { expected: 4, got: 2 };
        assert!(e.to_string().contains("expected W = 4"));
        let e = ClaimError::OutOfRange { p: 7, n: 3 };
        assert!(e.to_string().contains("0..3"));
    }
}
