//! Comparison baselines for multiword LL/SC.
//!
//! The paper's claim is relative: *same time, factor-`N` less space than
//! the previous best wait-free construction*. This crate supplies the
//! comparators that make the claim measurable (experiments E1 and E8):
//!
//! | implementation | progress | space | role |
//! |---|---|---|---|
//! | [`AmStyleLlSc`] | wait-free | `Θ(N²W)` | the prior state of the art's space class (Anderson–Moir 1995), reconstructed — see the module docs for exactly what is and is not claimed |
//! | [`LockLlSc`] | blocking | `O(W)` | the engineering default the lock-free literature argues against |
//! | [`SeqLockLlSc`] | lock-free reads | `O(W)` | minimal-space racy design; starvable readers, crash-fragile writers |
//! | [`PtrSwapLlSc`] | wait-free ops | `O(W)` live + unbounded garbage | the "just use GC/epochs" design whose space discipline the paper's bounded buffers replace |
//!
//! All of them (and the paper's algorithm, via an adapter) implement
//! [`MwHandle`], so the harness and benches drive them identically;
//! [`build`] constructs any of them from an [`Algo`] tag.
//!
//! Every baseline also ships an [`MwFactory`](mwllsc::MwFactory) marker
//! ([`LockBackend`], [`SeqLockBackend`], [`PtrSwapBackend`],
//! [`AmStyleBackend`]), so `mwllsc-store`'s sharded `Store` can serve a
//! multi-million-key space over any of them; [`try_build_store`] selects
//! a backend from an [`Algo`] tag at runtime. To make that possible the
//! baselines' `claim` is now a *lease* (like the core algorithm's since
//! the slot-registry redesign): dropping a handle frees its process id
//! for a later [`try_claim`](LockLlSc::try_claim).

#![warn(missing_docs, missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

mod am_style;
mod buffers;
mod factory;
mod lock;
mod ptrswap;
mod seqlock;
mod traits;

pub use am_style::{AmHandle, AmStyleBackend, AmStyleLlSc};
pub use factory::{build, try_build, try_build_store, Algo};
pub use lock::{LockBackend, LockHandle, LockLlSc};
pub use ptrswap::{PtrSwapBackend, PtrSwapHandle, PtrSwapLlSc};
pub use seqlock::{SeqLockBackend, SeqLockHandle, SeqLockLlSc};
pub use traits::{MwHandle, Progress, SpaceEstimate};
