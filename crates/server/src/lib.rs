//! `mwllsc-server`: a pipelined binary-protocol network frontend with
//! request coalescing over the sharded LL/SC store.
//!
//! The paper's LL/SC object makes a per-key update a handful of shared
//! RMWs; the store's batched paths ([`update_many`], [`read_many`]) fold
//! whole runs of same-key operations into *one* SC commit. This crate
//! closes the remaining gap to "serving traffic": it puts sockets in
//! front of a [`Store`] and converts socket-level
//! concurrency into exactly those batches.
//!
//! # Architecture
//!
//! - **Reactor** (`reactor`): one acceptor thread with a non-blocking
//!   listener deals connections round-robin to worker threads
//!   (thread-per-core model — workers never share a connection, so
//!   connection state needs no locks).
//! - **Protocol** ([`proto`]): length-prefixed binary frames, versioned
//!   header, `GET`/`SET`/`UPDATE`/`MGET`/`MSET`, typed error replies
//!   mirroring [`StoreError`](mwllsc_store::StoreError). Decoding is
//!   panic-free and allocation-bounded.
//! - **Connections** (`conn`): non-blocking buffered I/O with
//!   per-connection pipelining — clients may stream any number of
//!   request frames ahead of reading replies.
//! - **Coalescing** (`coalesce`): every tick, each worker drains all
//!   of its ready connections' pipelines into dispatch *waves*: one
//!   merged `update_many` write batch and one `read_many` read batch per
//!   wave. The store sorts each batch by `(shard, key)` and folds
//!   equal-key runs into single SC commits, so a hot key hammered by
//!   many connections costs one LL/SC commit per wave, not one per
//!   request.
//! - **Workers** (`worker`): each owns one
//!   [`DynStoreHandle`](mwllsc_store::DynStoreHandle) (one shard-slot
//!   lease per touched shard), ticking read → coalesce → dispatch →
//!   flush, with slow-reader backpressure and a graceful drain on
//!   shutdown.
//!
//! # Ordering guarantees
//!
//! Within one connection, responses arrive in request order and the
//! effects are applied in request order (a connection contributes only
//! its leading same-class run to each wave, and a wave's writes dispatch
//! before its reads). Across connections, requests race exactly as
//! concurrent store handles do — each individual request is atomic,
//! with the backend's per-object progress guarantee.
//!
//! The server is generic over the store backend: start it from a typed
//! [`Store<B>`](mwllsc_store::Store) with [`Server::start`], from a
//! runtime-selected backend with [`Server::start_dyn`], or over a
//! shared-nothing [`Mesh`] with [`Server::start_mesh`]
//! (workers forward decoded frames to owning shards over SPSC rings
//! instead of committing on their own threads).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mwllsc_server::{Client, Server, ServerConfig, UpdateOp};
//! use mwllsc_store::{Store, StoreConfig};
//!
//! let store = Store::new(StoreConfig::new(4, 2, 1, 1 << 16));
//! let server = Server::start(&store, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! client.set(7, vec![40]).unwrap().unwrap();
//! assert_eq!(client.update(7, UpdateOp::Add(vec![2])).unwrap().unwrap(), vec![42]);
//! assert_eq!(client.get(7).unwrap().unwrap(), vec![42]);
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.requests, 3);
//! assert_eq!(store.live_slot_leases(), 0, "shutdown released every lease");
//! ```
//!
//! [`update_many`]: mwllsc_store::StoreHandle::update_many
//! [`read_many`]: mwllsc_store::StoreHandle::read_many

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod client;
mod coalesce;
mod conn;
pub mod proto;
mod reactor;
mod route;
mod stats;
mod worker;

use mwllsc::sync::{AtomicBool, Ordering};
use std::net::{SocketAddr, TcpListener};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use mwllsc::MwFactory;
use mwllsc_mesh::Mesh;
use mwllsc_store::{DynStore, Store};

pub use client::Client;
pub use coalesce::Dispatch;
pub use proto::{Request, Response, UpdateOp, WireError};
pub use stats::{ServerStats, HIST_BUCKETS};

use coalesce::Validator;
use stats::AtomicStats;
use worker::WorkerCfg;

/// Server construction knobs. `Default` binds an ephemeral loopback
/// port with one worker and coalesced dispatch.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port; read the
    /// result off [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads. Each holds one store handle (one shard-slot
    /// lease per touched shard), so [`Server::start`] clamps this to
    /// the store's `shard_capacity` — extra workers could never lease a
    /// slot. For a thread-per-core deployment set it to
    /// `std::thread::available_parallelism()`.
    pub workers: usize,
    /// Batch dispatch mode (the E13 experiment compares both).
    pub dispatch: Dispatch,
    /// Per-connection queued-output cap: past it the connection's socket
    /// is not read until the peer drains replies (slow-reader
    /// backpressure).
    pub max_conn_out_bytes: usize,
    /// Per-connection request cap per coalescing wave: a pipeline deeper
    /// than this spreads across successive waves, bounding wave latency
    /// and letting backpressure engage between slices.
    pub max_wave_run: usize,
    /// Worker sleep when a tick moved nothing.
    pub idle_sleep: Duration,
    /// How long [`Server::shutdown`] keeps flushing already-computed
    /// responses before dropping undrained connections.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            dispatch: Dispatch::Coalesced,
            max_conn_out_bytes: 256 * 1024,
            max_wave_run: 512,
            idle_sleep: Duration::from_micros(50),
            drain_timeout: Duration::from_millis(500),
        }
    }
}

impl ServerConfig {
    /// `Default`, with `workers` workers.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        Self { workers, ..Self::default() }
    }

    /// Sets the dispatch mode.
    #[must_use]
    pub fn dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch;
        self
    }
}

/// A running server: the acceptor thread, its workers, and their shared
/// counters. Dropping it (or calling [`shutdown`](Server::shutdown))
/// stops accepting, drains every in-flight request, flushes responses,
/// and releases all store leases.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<AtomicStats>,
}

impl Server {
    /// Starts a server over a typed store.
    pub fn start<B: MwFactory>(
        store: &Arc<Store<B>>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        Self::start_dyn(Arc::new(Arc::clone(store)), config)
    }

    /// Starts a server over a runtime-selected backend (see
    /// [`DynStore`]; `llsc_baselines::try_build_store` maps algorithm
    /// names to boxed stores).
    pub fn start_dyn(store: Arc<dyn DynStore>, config: ServerConfig) -> std::io::Result<Self> {
        let n_workers = config.workers.clamp(1, store.shard_capacity());
        let validator = Validator { key_capacity: store.key_capacity(), width: store.width() };
        let routes = (0..n_workers).map(|_| route::Route::Store(store.attach_dyn())).collect();
        Self::start_routes(routes, validator, config)
    }

    /// Starts a server over a shared-nothing [`Mesh`]: each server
    /// worker forwards its decoded waves over SPSC rings to the mesh
    /// workers that own the touched shards, instead of leasing shard
    /// slots and committing on its own thread.
    ///
    /// Unlike [`start_dyn`](Self::start_dyn), `config.workers` is *not*
    /// clamped by the store's `shard_capacity` — mesh caller links
    /// consume no shard-slot leases (those live in the mesh's worker
    /// threads), so any number of frontend workers can serve one mesh.
    pub fn start_mesh<B: MwFactory>(
        mesh: &Arc<Mesh<B>>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let n_workers = config.workers.max(1);
        let validator = Validator { key_capacity: mesh.key_capacity(), width: mesh.width() };
        let routes = (0..n_workers).map(|_| route::Route::Mesh(Box::new(mesh.attach()))).collect();
        Self::start_routes(routes, validator, config)
    }

    /// Shared starter: binds, then spawns one worker thread per route
    /// plus the acceptor.
    fn start_routes(
        routes: Vec<route::Route>,
        validator: Validator,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(AtomicStats::default());
        let worker_cfg = WorkerCfg {
            dispatch: config.dispatch,
            max_conn_out_bytes: config.max_conn_out_bytes,
            max_wave_run: config.max_wave_run.max(1),
            idle_sleep: config.idle_sleep,
            drain_timeout: config.drain_timeout,
        };

        let mut senders = Vec::with_capacity(routes.len());
        let mut workers = Vec::with_capacity(routes.len());
        for (i, route) in routes.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            let (stats, stop) = (Arc::clone(&stats), Arc::clone(&stop));
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mwllsc-worker-{i}"))
                    .spawn(move || worker::run(&rx, route, validator, worker_cfg, &stats, &stop))?,
            );
        }
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("mwllsc-acceptor".to_owned())
                .spawn(move || reactor::run_acceptor(&listener, &senders, &stop))?
        };

        Ok(Self { local_addr, stop, acceptor: Some(acceptor), workers, stats })
    }

    /// The bound listen address (the ephemeral port, for `…:0` configs).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A live counter snapshot.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Graceful shutdown: stops accepting, dispatches every
    /// already-received request, flushes responses (bounded by the
    /// config's `drain_timeout`), drops every connection, and releases
    /// every shard-slot lease the workers held. Returns the final
    /// counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.halt();
        self.stats.snapshot()
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    /// Same drain as [`shutdown`](Server::shutdown), minus the returned
    /// snapshot.
    fn drop(&mut self) {
        self.halt();
    }
}
