//! End-to-end integration: the full stack (substrate → core → apps) under
//! real threads, plus cross-checking the two substrates against each
//! other.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mwllsc_suite::llsc_word::EpochLlSc;
use mwllsc_suite::mwllsc::{LlStrategy, MwLlSc};
use mwllsc_suite::mwllsc_apps::{Atomic, WaitFreeQueue, WaitFreeStack};

#[test]
fn full_stack_bank_transfer() {
    // The classic atomicity demo: accounts must always sum to the same
    // total while threads move money between them. Each account is one
    // word of a 4-word object; transfers are LL/SC loops.
    const ACCOUNTS: usize = 4;
    const THREADS: usize = 4;
    const TRANSFERS: usize = 20_000;
    const TOTAL: u64 = 1_000_000;

    let init = [TOTAL / 4; ACCOUNTS];
    let obj = MwLlSc::new(THREADS + 1, ACCOUNTS, &init);
    let mut handles = obj.handles();
    let mut auditor = handles.remove(0);

    let joins: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(t, mut h)| {
            std::thread::spawn(move || {
                let mut v = [0u64; ACCOUNTS];
                let mut rng = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..TRANSFERS {
                    loop {
                        h.ll(&mut v);
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let from = (rng % ACCOUNTS as u64) as usize;
                        let to = ((rng >> 8) % ACCOUNTS as u64) as usize;
                        let amount = (rng >> 16) % 100;
                        if v[from] >= amount {
                            v[from] -= amount;
                            v[to] += amount;
                        }
                        if h.sc(&v) {
                            break;
                        }
                    }
                }
            })
        })
        .collect();

    // Audit concurrently: the sum must be invariant in every view.
    let mut v = [0u64; ACCOUNTS];
    for _ in 0..50_000 {
        auditor.read(&mut v);
        assert_eq!(v.iter().sum::<u64>(), TOTAL, "money appeared or vanished: {v:?}");
    }
    for j in joins {
        j.join().unwrap();
    }
    auditor.ll(&mut v);
    assert_eq!(v.iter().sum::<u64>(), TOTAL);
}

#[test]
fn epoch_substrate_full_object_agrees() {
    // Drive the identical deterministic workload on both substrates.
    let run_on = |tagged: bool| -> Vec<u64> {
        let init = [1u64, 2];
        let mut trace = Vec::new();
        if tagged {
            let obj = MwLlSc::new(2, 2, &init);
            let mut hs = obj.handles();
            let mut v = [0u64; 2];
            for i in 0..500u64 {
                let p = (i % 2) as usize;
                hs[p].ll(&mut v);
                trace.push(v[0]);
                let ok = hs[p].sc(&[i, i * 2]);
                trace.push(u64::from(ok));
            }
        } else {
            let obj = MwLlSc::<EpochLlSc>::try_new_in(2, 2, &init).unwrap();
            let mut hs = obj.handles();
            let mut v = [0u64; 2];
            for i in 0..500u64 {
                let p = (i % 2) as usize;
                hs[p].ll(&mut v);
                trace.push(v[0]);
                let ok = hs[p].sc(&[i, i * 2]);
                trace.push(u64::from(ok));
            }
        }
        trace
    };
    assert_eq!(run_on(true), run_on(false), "substrates must be observationally identical");
}

#[test]
fn retry_strategy_same_results_sequentially() {
    for strategy in [LlStrategy::WaitFree, LlStrategy::RetryLoop] {
        let obj = MwLlSc::try_with_strategy(2, 2, &[0, 0], strategy).unwrap();
        let mut hs = obj.handles();
        let mut v = [0u64; 2];
        for i in 0..200u64 {
            hs[0].ll(&mut v);
            assert_eq!(v[0], i, "{strategy:?}");
            assert!(hs[0].sc(&[i + 1, i + 1]), "{strategy:?}");
        }
    }
}

#[test]
fn typed_cell_and_queue_together() {
    // Two independent shared structures used by the same threads — a
    // realistic composition: a queue of work items plus an atomic pair
    // tracking (processed, checksum).
    const WORKERS: usize = 3;
    const ITEMS: u32 = 5_000;

    let queue = WaitFreeQueue::new(WORKERS + 1, 64);
    let tracker = Atomic::<(u64, u64)>::new(WORKERS + 1, (0, 0));
    let mut qhandles = queue.handles();
    let mut producer = qhandles.remove(0);
    let mut thandles = tracker.handles();
    let mut audit = thandles.remove(0);

    let done = Arc::new(AtomicBool::new(false));
    let joins: Vec<_> = qhandles
        .into_iter()
        .zip(thandles)
        .map(|(mut q, mut t)| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || loop {
                match q.dequeue() {
                    Some(v) => {
                        t.fetch_update(|(count, sum)| (count + 1, sum + u64::from(v)));
                    }
                    None => {
                        if done.load(Ordering::Relaxed) {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            })
        })
        .collect();

    for i in 0..ITEMS {
        while !producer.enqueue(i) {
            std::hint::spin_loop();
        }
    }
    // Wait until everything is processed, then signal.
    loop {
        if producer.is_empty() {
            break;
        }
        std::thread::yield_now();
    }
    done.store(true, Ordering::Relaxed);
    for j in joins {
        j.join().unwrap();
    }
    assert!(producer.is_empty());
    let (count, sum) = audit.load();
    assert_eq!(count, u64::from(ITEMS), "every item processed exactly once");
    let expect: u64 = (0..u64::from(ITEMS)).sum();
    assert_eq!(sum, expect, "checksum of processed items");
}

#[test]
fn stack_and_queue_coexist() {
    let stack = WaitFreeStack::new(2, 16);
    let queue = WaitFreeQueue::new(2, 16);
    let mut s = stack.claim(0);
    let mut q = queue.claim(0);
    for i in 0..10 {
        assert!(s.push(i));
        assert!(q.enqueue(i));
    }
    // LIFO vs FIFO from the same inputs:
    assert_eq!(s.pop(), Some(9));
    assert_eq!(q.dequeue(), Some(0));
}
