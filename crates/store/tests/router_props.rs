//! Router properties: stability (the same key always routes to the same
//! shard) and balance (shard load within 2× of ideal across 64 shards).
//!
//! Both properties are load-bearing for the store. Stability is
//! correctness: two handles disagreeing on a key's shard would materialize
//! two objects for one logical variable. Balance is the scaling claim: a
//! skewed router would concentrate slot leases, table locks and cache
//! traffic on a few shards and void the point of sharding.

use proptest::prelude::*;

use mwllsc_store::{fnv1a, Router};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn routing_is_stable_and_in_range(key in any::<u64>(), shards in 1usize..200) {
        let r = Router::new(shards);
        let s = r.shard_of(key);
        prop_assert!(s < shards);
        prop_assert_eq!(s, r.shard_of(key), "same router, same key, same shard");
        prop_assert_eq!(
            s,
            Router::new(shards).shard_of(key),
            "routing is a pure function of (key, shards), not of the instance"
        );
        prop_assert_eq!(fnv1a(key), fnv1a(key));
    }

    #[test]
    fn random_keysets_balance_within_2x_over_64_shards(seed in any::<u64>()) {
        const SHARDS: usize = 64;
        const KEYS: usize = 8192;
        let r = Router::new(SHARDS);
        let mut counts = [0usize; SHARDS];
        // SplitMix64 stream: decorrelated from the FNV hash under test.
        let mut state = seed;
        for _ in 0..KEYS {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            counts[r.shard_of(z ^ (z >> 31))] += 1;
        }
        let ideal = KEYS / SHARDS;
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max <= 2 * ideal, "max shard load {max} > 2x ideal {ideal}");
        prop_assert!(min > 0, "some shard starved entirely");
    }
}

/// Sequential ids are the common real-world key shape (row ids, user ids)
/// and the adversarial one for weak hashes — the whole low-entropy range
/// must still spread.
#[test]
fn sequential_keys_balance_within_2x_over_64_shards() {
    const SHARDS: usize = 64;
    let r = Router::new(SHARDS);
    for (start, n) in [(0u64, 16_384usize), (1 << 24, 16_384), (u64::MAX - 20_000, 16_384)] {
        let mut counts = [0usize; SHARDS];
        for i in 0..n as u64 {
            counts[r.shard_of(start.wrapping_add(i))] += 1;
        }
        let ideal = n / SHARDS;
        let max = *counts.iter().max().unwrap();
        assert!(
            max <= 2 * ideal,
            "sequential keys from {start}: max shard load {max} > 2x ideal {ideal}"
        );
        assert!(counts.iter().all(|&c| c > 0), "sequential keys from {start}: starved shard");
    }
}

/// Strided keys (hash-table resize patterns, page-aligned addresses):
/// power-of-two strides must not alias the shard choice.
#[test]
fn strided_keys_balance_within_2x_over_64_shards() {
    const SHARDS: usize = 64;
    let r = Router::new(SHARDS);
    for stride in [64u64, 4096, 1 << 20] {
        let n = 8192usize;
        let mut counts = [0usize; SHARDS];
        for i in 0..n as u64 {
            counts[r.shard_of(i * stride)] += 1;
        }
        let ideal = n / SHARDS;
        let max = *counts.iter().max().unwrap();
        assert!(max <= 2 * ideal, "stride {stride}: max shard load {max} > 2x ideal {ideal}");
    }
}
