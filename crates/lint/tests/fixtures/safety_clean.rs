//! L003 clean fixture: every introduction form covered.

pub fn block(p: *mut u8) {
    // SAFETY: the caller handed us a valid, exclusive pointer.
    unsafe { *p = 1 };
}

/// Writes through `p`.
///
/// # Safety
///
/// `p` must be valid for writes.
pub unsafe fn exported(p: *mut u8) {
    unsafe { *p = 2 } // SAFETY: the fn contract above guarantees validity.
}

pub struct T;
// SAFETY: T is a unit type with no thread-affine state; the comment
// covers the grouped pair below.
unsafe impl Send for T {}
unsafe impl Sync for T {}

/// Fn-pointer types declare no obligation.
pub struct W {
    pub drop_fn: unsafe fn(*mut u8),
}
