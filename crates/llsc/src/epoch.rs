//! Pointer-indirection realization of single-word LL/SC with deferred
//! node reclamation.
//!
//! The upstream design for this substrate is epoch-based reclamation
//! (`crossbeam_epoch`); this build environment has no access to external
//! crates, so the object is built on [`DeferredSwapCell`] instead: every
//! node retired by a successful SC/`write` is kept on a retire list and
//! freed when the object is dropped. Memory therefore grows with the
//! number of successful SCs over the object's lifetime (bounded and
//! small for every test and bench in this suite); swapping in a true
//! epoch scheme is tracked in `ROADMAP.md`.

use core::fmt;

use crate::deferred::DeferredSwapCell;
use crate::{Link, LlScCell};

/// A single-word LL/SC/VL object holding full 64-bit values.
///
/// Each successful SC (and each `write`) allocates a fresh node carrying
/// `(value, seq+1)` and swings an atomic pointer; retired nodes are kept
/// alive until the object is dropped (see the module docs). Because the
/// link compares the node's 64-bit `seq` (not the pointer), address
/// reuse cannot cause an ABA false-success, and the wrap-around bound is
/// a full `2^64`.
///
/// Compared to [`TaggedLlSc`](crate::TaggedLlSc) this trades an
/// allocation per successful SC for full-width values and an unbounded
/// tag. The multiword algorithm only needs narrow values, so `TaggedLlSc`
/// is its default substrate; `EpochLlSc` exists (a) to cross-check the
/// tagged realization against an independently derived one and (b) as the
/// substrate ablation measured in the benches.
///
/// # Examples
///
/// ```
/// use llsc_word::{EpochLlSc, LlScCell};
///
/// let x = EpochLlSc::new(u64::MAX - 1);
/// let (v, link) = x.ll();
/// assert_eq!(v, u64::MAX - 1);
/// assert!(x.sc(link, 42));
/// assert!(!x.sc(link, 43));
/// assert_eq!(x.read(), 42);
/// ```
pub struct EpochLlSc {
    cell: DeferredSwapCell<u64>,
}

impl fmt::Debug for EpochLlSc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochLlSc").field("value", &self.read()).finish()
    }
}

impl EpochLlSc {
    /// Creates an object with initial value `init`.
    #[must_use]
    pub fn new(init: u64) -> Self {
        Self { cell: DeferredSwapCell::new(init) }
    }

    #[cfg(debug_assertions)]
    fn id(&self) -> usize {
        self as *const Self as usize
    }

    fn make_link(&self, seq: u64) -> Link {
        Link {
            snapshot: seq,
            #[cfg(debug_assertions)]
            owner: self.id(),
        }
    }

    #[cfg(debug_assertions)]
    fn check_link(&self, link: &Link) {
        debug_assert_eq!(
            link.owner,
            self.id(),
            "Link used with an object other than the one that issued it"
        );
    }

    #[cfg(not(debug_assertions))]
    fn check_link(&self, _link: &Link) {}
}

impl LlScCell for EpochLlSc {
    fn ll(&self) -> (u64, Link) {
        let (value, seq) = self.cell.load();
        (*value, self.make_link(seq))
    }

    fn sc(&self, link: Link, v: u64) -> bool {
        self.check_link(&link);
        self.cell.compare_swap(link.snapshot, v)
    }

    fn vl(&self, link: Link) -> bool {
        self.check_link(&link);
        self.cell.load().1 == link.snapshot
    }

    fn read(&self) -> u64 {
        *self.cell.load().0
    }

    fn write(&self, v: u64) {
        // Retry loop: lock-free. Same usage argument as TaggedLlSc::write —
        // within the multiword algorithm every `write` is effectively
        // uncontended, so the loop exits after O(1) attempts.
        loop {
            let seq = self.cell.load().1;
            if self.cell.compare_swap(seq, v) {
                return;
            }
        }
    }

    fn max_value(&self) -> u64 {
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_width_values() {
        let x = EpochLlSc::new(u64::MAX);
        assert_eq!(x.read(), u64::MAX);
        let (v, link) = x.ll();
        assert_eq!(v, u64::MAX);
        assert!(x.sc(link, 0));
        assert_eq!(x.read(), 0);
    }

    #[test]
    fn sc_semantics_match_spec() {
        let x = EpochLlSc::new(1);
        let (_, l1) = x.ll();
        let (_, l2) = x.ll();
        assert!(x.sc(l2, 2));
        assert!(!x.sc(l1, 3));
        assert!(!x.vl(l1));
        assert_eq!(x.read(), 2);
    }

    #[test]
    fn write_invalidates() {
        let x = EpochLlSc::new(5);
        let (_, link) = x.ll();
        x.write(5);
        assert!(!x.vl(link));
        assert!(!x.sc(link, 6));
    }

    #[test]
    fn aba_immune_across_value_cycles() {
        let x = EpochLlSc::new(7);
        let (_, stale) = x.ll();
        for _ in 0..100 {
            let (_, l) = x.ll();
            assert!(x.sc(l, 9));
            let (_, l) = x.ll();
            assert!(x.sc(l, 7));
        }
        assert!(!x.sc(stale, 8));
        assert_eq!(x.read(), 7);
    }

    #[test]
    fn concurrent_fetch_increment_is_exact() {
        const THREADS: usize = 8;
        const PER: u64 = 5_000;
        let x = Arc::new(EpochLlSc::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let x = Arc::clone(&x);
            handles.push(std::thread::spawn(move || {
                let mut done = 0;
                while done < PER {
                    let (v, link) = x.ll();
                    if x.sc(link, v + 1) {
                        done += 1;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(x.read(), THREADS as u64 * PER);
    }

    #[test]
    fn drop_reclaims_without_leak_or_crash() {
        for _ in 0..1000 {
            let x = EpochLlSc::new(3);
            let (_, l) = x.ll();
            assert!(x.sc(l, 4));
        }
    }

    #[test]
    fn drop_reclaims_long_retire_lists() {
        // Many successful SCs, then drop: the whole retire list is walked.
        let x = EpochLlSc::new(0);
        for i in 0..10_000u64 {
            let (_, l) = x.ll();
            assert!(x.sc(l, i));
        }
        drop(x);
    }
}
