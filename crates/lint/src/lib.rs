//! `mwllsc-lint` — a std-only static analyzer for this workspace.
//!
//! Five rule families (see `LINT_POLICY.md` at the repository root):
//!
//! | id   | rule |
//! |------|------|
//! | L001 | facade: no `std::sync::atomic` outside `llsc_word::sync` + `shims/` |
//! | L002 | per-cell memory-ordering policy via `// lint: cell=` annotations |
//! | L003 | every `unsafe` carries a `// SAFETY:` comment |
//! | L004 | `// lint: no-alloc` regions reject allocation constructors |
//! | L005 | server/store library code is panic-free |
//!
//! No `syn`, no serde: crates.io is unreachable from this workspace, so
//! the lexer is hand-rolled (`lexer`) and JSON is written by hand
//! (`report`). The pass is purely lexical — cheap, deterministic, and
//! honest about what it can see (`LINT_POLICY.md` records the caveats).

pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use report::Report;
use rules::FileClass;

/// Lints one file's content, classified by its workspace-relative path.
/// Exposed for fixture tests and the seeded-regression drill.
#[must_use]
pub fn lint_file_content(rel_path: &str, content: &str) -> Vec<report::Finding> {
    let src = lexer::Source::lex(content);
    rules::check_file(&FileClass::of(rel_path), &src)
}

/// Walks the workspace at `root` and lints every library `.rs` file.
///
/// Scope: `src/` trees of `crates/*` and `shims/*` plus the root
/// package's `src/` — matching the rules' remit (library code).
/// `tests/`, `benches/`, `examples/`, and fixture files are out of
/// scope by construction, as are `target/` and VCS directories.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut src_dirs: Vec<PathBuf> = vec![root.join("src")];
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.flatten() {
                src_dirs.push(entry.path().join("src"));
            }
        }
    }
    for dir in src_dirs {
        collect_rs(&dir, &mut files)?;
    }
    files.sort();

    let mut report = Report::default();
    for path in &files {
        let rel = rel_slash(root, path);
        let content = fs::read_to_string(path)?;
        report.findings.extend(lint_file_content(&rel, &content));
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// Recursively collects `.rs` files under `dir` (absent dirs are fine).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let Ok(entries) = fs::read_dir(dir) else { return Ok(()) };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators (stable across platforms,
/// so the JSON report and baseline keys are portable).
fn rel_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Locates the workspace root from a start directory: the nearest
/// ancestor containing `Cargo.toml` with a `[workspace]` table.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
