//! Reclamation stress suite for the hand-rolled EBR subsystem
//! (`llsc_word::smr`) beneath the pointer substrates.
//!
//! Three properties, each a hard assertion:
//!
//! 1. **Bounded backlog** — under a sustained 8-thread compare-swap storm
//!    (≥ 1M successful swaps by default), the cell's live retired-node
//!    count never exceeds a fixed `O(threads × bag size)` bound. The seed
//!    behavior this replaces kept *every* retired node until drop, i.e.
//!    the count equaled the total number of successful swaps.
//! 2. **Guard safety** — a reader that pins a value and then goes quiet
//!    while other threads swap thousands of times still reads its pinned
//!    snapshot intact.
//! 3. **Stall tolerance** — a participant that never unpins blocks the
//!    epoch from advancing (garbage accumulates, as EBR's contract says
//!    it must) but never affects correctness; once the stalled guard
//!    drops, the backlog drains back to nothing.
//!
//! The epoch state is process-global, so these tests serialize through a
//! mutex: a transient pin in one test must not perturb another test's
//! bound. (The `cargo test` harness runs tests in this binary on
//! concurrent threads.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, OnceLock};

use llsc_word::{smr, DeferredSwapCell, EpochLlSc, LlScCell};

/// Serializes the tests in this binary (see the module docs).
fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Iteration budget scaled by the `MWLLSC_STRESS_ITERS` env knob — an
/// integer multiplier, default 1 — so CI stays inside its time budget
/// while many-core soak runs can scale the same tests up.
fn stress_iters(base: u64) -> u64 {
    let mult = std::env::var("MWLLSC_STRESS_ITERS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    base.saturating_mul(mult)
}

/// Workload-randomization seed, pinned by the `MWLLSC_STRESS_SEED` env
/// knob. Soak runs randomize thread timing through [`Jitter`]; when one
/// finds a schedule-dependent failure, exporting the printed seed replays
/// the exact same perturbation in a plain `cargo test` invocation.
fn stress_seed() -> u64 {
    let seed = std::env::var("MWLLSC_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5EED_0001);
    eprintln!("MWLLSC_STRESS_SEED={seed}");
    seed
}

/// splitmix64 over `seed ^ stream`: one independent stream per thread.
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Seeded schedule perturbation: an xorshift stream that occasionally
/// spins for a pseudo-random beat. Different seeds steer the real threads
/// into different interleaving neighborhoods; the same seed replays the
/// same rhythm.
struct Jitter(u64);

impl Jitter {
    fn new(seed: u64, stream: u64) -> Self {
        Jitter(mix(seed, stream) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn perturb(&mut self) {
        let r = self.next();
        if r % 8 == 0 {
            for _ in 0..(r >> 59) {
                std::hint::spin_loop();
            }
        }
    }
}

/// Flushes until `cond` holds or the budget runs out. Individual
/// `try_flush` calls can lose races against concurrent pins, so settling
/// loops rather than single calls make the assertions deterministic.
fn settle(cond: impl Fn() -> bool) -> bool {
    for _ in 0..10_000 {
        smr::try_flush();
        if cond() {
            return true;
        }
        std::thread::yield_now();
    }
    false
}

const THREADS: usize = 8;

/// The fixed backlog bound the suite holds the substrate to, in nodes:
/// every participant can sit on up to `ADVANCE_EVERY` retires between
/// collection attempts, roughly three epochs of garbage can be pending at
/// once, and the generous constant absorbs scheduling jitter. What
/// matters is what it does *not* contain: any term that grows with the
/// number of swaps performed.
fn backlog_bound(threads: usize) -> usize {
    (threads + 2) * smr::ADVANCE_EVERY as usize * 16
}

#[test]
fn backlog_bounded_under_8_thread_storm() {
    let _gate = serial();
    let seed = stress_seed();
    let target = stress_iters(1_000_000);
    let cell = Arc::new(EpochLlSc::new(0));
    let successes = Arc::new(AtomicU64::new(0));
    let bound = backlog_bound(THREADS);

    let joins: Vec<_> = (0..THREADS)
        .map(|t| {
            let cell = Arc::clone(&cell);
            let successes = Arc::clone(&successes);
            std::thread::spawn(move || {
                let mut jitter = Jitter::new(seed, t as u64);
                let mut local_high = 0usize;
                while successes.load(Ordering::Relaxed) < target {
                    jitter.perturb();
                    let (v, link) = cell.ll();
                    if cell.sc(link, v.wrapping_add(1)) {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                    local_high = local_high.max(cell.tracked_nodes());
                }
                local_high
            })
        })
        .collect();

    let mut high_water = 0;
    for j in joins {
        high_water = high_water.max(j.join().unwrap());
    }

    let done = successes.load(Ordering::Relaxed);
    assert!(done >= target, "storm under-ran: {done} < {target}");
    assert!(
        high_water < bound,
        "retired-node high water {high_water} exceeded the fixed bound {bound} \
         ({done} successful swaps; the seed behavior would have reached ~{done})"
    );

    // Quiescence: the entire backlog drains once the storm stops.
    assert!(
        settle(|| cell.tracked_nodes() <= 2),
        "backlog failed to drain at quiescence: {} nodes live",
        cell.tracked_nodes()
    );
    // And the space estimate is honest on the way down too.
    assert_eq!(
        cell.retired_words(),
        (cell.tracked_nodes() - 1) * DeferredSwapCell::<u64>::node_words()
    );
}

#[test]
fn guard_held_across_swaps_reads_valid_data() {
    let _gate = serial();
    let cell = Arc::new(DeferredSwapCell::new(vec![0xDEAD_BEEFu64; 64]));
    // Pin the initial value and go quiet.
    let held = cell.load();
    assert_eq!(held.seq(), 0);

    let writer_cell = Arc::clone(&cell);
    std::thread::spawn(move || {
        for i in 0..stress_iters(10_000) {
            let seq = writer_cell.load().seq();
            assert!(writer_cell.compare_swap(seq, vec![i; 64]), "single writer never conflicts");
        }
    })
    .join()
    .unwrap();

    // The node this guard pinned was retired ~10k swaps ago. It must
    // still be whole: same seq, same payload, no recycled bytes.
    assert_eq!(held.seq(), 0, "pinned node's header was recycled");
    assert!(
        held.iter().all(|&x| x == 0xDEAD_BEEF),
        "pinned node's payload was recycled while a guard protected it"
    );
    drop(held);
    assert!(settle(|| cell.tracked_nodes() <= 2), "backlog kept after all guards dropped");
}

#[test]
fn stalled_participant_blocks_advance_but_not_correctness() {
    let _gate = serial();
    // Fixed iteration count (not env-scaled): while the stall lasts, every
    // retired node stays live by design, and this test sizes that pile.
    const SWAPS: u64 = 100_000;
    let cell = Arc::new(EpochLlSc::new(7));

    let (pinned_tx, pinned_rx) = mpsc::channel::<u64>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let stall_cell = Arc::clone(&cell);
    let staller = std::thread::spawn(move || {
        // Pin via the public substrate surface: an in-flight LL whose
        // owner stopped cooperating. The raw guard under it is what
        // blocks the epoch.
        let guard = smr::pin();
        let (v, _link) = stall_cell.ll();
        pinned_tx.send(v).unwrap();
        release_rx.recv().unwrap();
        drop(guard);
    });
    let seen = pinned_rx.recv().unwrap();
    assert_eq!(seen, 7);
    let epoch_at_stall = smr::global_epoch();

    // Storm while stalled: correctness must be untouched.
    for i in 0..SWAPS {
        let (v, link) = cell.ll();
        assert_eq!(v, 7 + i, "stalled reader corrupted live data");
        assert!(cell.sc(link, v + 1), "uncontended SC failed under a stalled participant");
    }
    assert_eq!(cell.read(), 7 + SWAPS);

    // The stall blocked the epoch: at most one advance since the pin, so
    // essentially every retired node is still live — memory, not
    // correctness, is what a stalled participant costs.
    assert!(
        smr::global_epoch() <= epoch_at_stall + 1,
        "epoch advanced past a pinned participant: {} -> {}",
        epoch_at_stall,
        smr::global_epoch()
    );
    assert!(
        cell.tracked_nodes() as u64 > SWAPS / 2,
        "expected a large stalled backlog, saw {} nodes",
        cell.tracked_nodes()
    );

    // Releasing the stalled guard lets the whole pile drain.
    release_tx.send(()).unwrap();
    staller.join().unwrap();
    assert!(
        settle(|| cell.tracked_nodes() <= 2),
        "backlog failed to drain after the stalled guard released: {} nodes",
        cell.tracked_nodes()
    );
}

#[test]
fn space_estimate_stays_honest_through_storm_and_drain() {
    let _gate = serial();
    let cell = EpochLlSc::new(0);
    let mut saw_backlog = false;
    for i in 0..stress_iters(5_000) {
        let (v, link) = cell.ll();
        assert_eq!(v, i);
        assert!(cell.sc(link, v + 1));
        let retired = cell.retired_words();
        let nodes = cell.tracked_nodes();
        // retired_words is derived from the same counter the bound test
        // watches: nodes beyond the live one, times the node footprint.
        assert_eq!(retired, (nodes - 1) * DeferredSwapCell::<u64>::node_words());
        assert!(nodes >= 1);
        saw_backlog |= retired > 0;
    }
    assert!(saw_backlog, "thousands of swaps never surfaced in retired_words");
    assert!(settle(|| cell.retired_words() == 0), "retired_words stuck above zero at quiescence");
}
