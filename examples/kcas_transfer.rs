//! Multi-location CAS (k-CAS) on the multiword object: atomic transfers
//! across a register file, with a concurrent auditor.
//!
//! Run with: `cargo run --release --example kcas_transfer`
//!
//! k-compare-single-swap is reference [16] of the paper — a primitive
//! that is notoriously hard to build from single-word CAS, and a
//! three-line retry loop on multiword LL/SC. Six threads make 2-CAS
//! transfers between eight registers while an auditor snapshot-checks
//! that the total is conserved in every single view.

use std::time::Instant;

use mwllsc_apps::KcasArray;

fn main() {
    const REGS: usize = 8;
    const THREADS: usize = 6;
    const TRANSFERS: usize = 30_000;
    const UNIT: u64 = 1_000;

    let arr = KcasArray::new(THREADS + 1, &[UNIT; REGS]);
    let mut handles = arr.handles();
    let mut auditor = handles.remove(0);

    let start = Instant::now();
    let joins: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(t, mut h)| {
            std::thread::spawn(move || {
                let mut rng = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                let mut done = 0usize;
                let mut retries = 0u64;
                while done < TRANSFERS {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let from = (rng % REGS as u64) as usize;
                    let to = ((rng >> 8) % REGS as u64) as usize;
                    if from == to {
                        continue;
                    }
                    let amount = (rng >> 16) % 10 + 1;
                    loop {
                        let snap = h.snapshot();
                        if snap[from] < amount {
                            break; // insufficient funds: abandon
                        }
                        match h.kcas(&[
                            (from, snap[from], snap[from] - amount),
                            (to, snap[to], snap[to] + amount),
                        ]) {
                            Ok(()) => break,
                            Err(_) => retries += 1, // stale snapshot: re-read
                        }
                    }
                    done += 1;
                }
                retries
            })
        })
        .collect();

    // Concurrent audit: conservation must hold in every atomic snapshot.
    let mut audits = 0u64;
    while audits < 100_000 {
        let snap = auditor.snapshot();
        let total: u64 = snap.iter().sum();
        assert_eq!(total, REGS as u64 * UNIT, "k-CAS tore a transfer: {snap:?}");
        audits += 1;
    }

    let mut total_retries = 0;
    for j in joins {
        total_retries += j.join().unwrap();
    }
    let elapsed = start.elapsed();
    let final_snap = auditor.snapshot();
    assert_eq!(final_snap.iter().sum::<u64>(), REGS as u64 * UNIT);

    println!(
        "{} 2-CAS transfers by {THREADS} threads in {elapsed:.1?} ({} stale-snapshot retries)",
        THREADS * TRANSFERS,
        total_retries
    );
    println!("{audits} concurrent audits: total conserved in every snapshot");
    println!("final registers: {final_snap:?}");
}
