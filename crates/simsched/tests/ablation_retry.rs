//! The necessity of the helping mechanism, demonstrated as a negative
//! result: the bare read–validate retry LL (`SimOp::LlRetry`) is starved
//! by exactly the adversary the paper's announce+help LL defeats.

use simsched::interp::{ll_step_bound, SimOp};
use simsched::runner::{run, RunConfig, Sim};
use simsched::sched::{RandomSched, StarveVictim};

fn writer_program(rounds: usize) -> Vec<SimOp> {
    let mut ops = Vec::new();
    for _ in 0..rounds {
        ops.push(SimOp::Ll);
        ops.push(SimOp::ScBump(1));
    }
    ops
}

fn victim_sim(w: usize, victim_op: SimOp, writer_rounds: usize) -> Sim {
    let mut programs = vec![vec![victim_op]];
    for _ in 0..3 {
        programs.push(writer_program(writer_rounds));
    }
    Sim::new(w, &vec![0u64; w], programs)
}

#[test]
fn waitfree_ll_completes_under_starvation_retry_ll_does_not() {
    let w = 8;
    let cfg = RunConfig { max_steps: 150_000, record_history: false, ..RunConfig::default() };

    // The paper's LL: completes within its step bound even while starved
    // and overtaken by hundreds of successful SCs.
    let report =
        run(victim_sim(w, SimOp::Ll, 10_000), &mut StarveVictim::new(0, 100), &cfg).unwrap();
    assert!(!report.pending.contains(&0), "the wait-free LL must complete despite starvation");
    assert!(report.max_op_steps.ll <= ll_step_bound(w));
    assert!(report.helped_lls > 0, "it completed *because* it was helped");

    // The ablation: same adversary, same budget — the retry LL is still
    // spinning when the budget expires, having burned orders of magnitude
    // more than the wait-free bound.
    let report =
        run(victim_sim(w, SimOp::LlRetry, 10_000), &mut StarveVictim::new(0, 100), &cfg).unwrap();
    assert!(report.pending.contains(&0), "the retry LL must still be starving at the step budget");
}

#[test]
fn retry_ll_eventually_completes_when_writers_stop() {
    // Lock-freedom in action: the retry LL finishes only once the writers
    // run out of work — with a step count far beyond the wait-free bound,
    // which is precisely the guarantee gap.
    let w = 8;
    let cfg = RunConfig { record_history: false, ..RunConfig::default() };
    let report =
        run(victim_sim(w, SimOp::LlRetry, 40), &mut StarveVictim::new(0, 50), &cfg).unwrap();
    assert!(report.completed);
    assert!(
        report.max_op_steps.retry_ll > ll_step_bound(w),
        "retry LL took {} steps, within the wait-free bound {} — the adversary \
         was not adversarial enough for this test to be meaningful",
        report.max_op_steps.retry_ll,
        ll_step_bound(w)
    );
}

#[test]
fn retry_ll_returns_correct_values() {
    // The ablation is still *correct* (linearizable, checked by the LP
    // monitor inside RunConfig::default) — what it lacks is progress.
    for seed in 0..40u64 {
        let mut programs = vec![vec![SimOp::LlRetry, SimOp::ScBump(1), SimOp::LlRetry, SimOp::Vl]];
        programs.push(writer_program(5));
        programs.push(writer_program(5));
        let sim = Sim::new(2, &[0, 0], programs);
        let report = run(sim, &mut RandomSched::new(seed), &RunConfig::default())
            .unwrap_or_else(|f| panic!("seed {seed}: {f}"));
        assert!(report.completed, "seed {seed}");
        assert_eq!(report.final_value[0], report.x_changes, "seed {seed}");
    }
}

#[test]
fn mixed_ll_styles_coexist() {
    // Processes may mix the two LL styles freely; all monitors still pass.
    let programs = vec![
        vec![SimOp::Ll, SimOp::ScBump(1), SimOp::LlRetry, SimOp::ScBump(1)],
        vec![SimOp::LlRetry, SimOp::ScBump(1), SimOp::Ll, SimOp::ScBump(1)],
        writer_program(6),
    ];
    let sim = Sim::new(3, &[0, 0, 0], programs);
    let report = run(sim, &mut RandomSched::new(11), &RunConfig::default()).unwrap();
    assert!(report.completed);
    assert_eq!(report.final_value[0], report.x_changes);
}
