//! The worker loop: one thread owning a set of connections and one
//! [`Route`], ticking read → coalesce → dispatch → flush.
//!
//! A store route holds exactly one
//! [`DynStoreHandle`](mwllsc_store::DynStoreHandle), so a server with
//! `N` workers consumes at most one slot lease per shard per worker —
//! the store's `shard_capacity` bounds how many workers (plus external
//! handles) can serve a store, and the lease is what makes every per-key
//! claim inside a batch an uncontended RMW (see the store docs). A mesh
//! route leases nothing: the shard leases live in the mesh's own worker
//! threads, and this loop only forwards over rings.

use mwllsc::sync::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::coalesce::{Dispatch, Validator, Wave};
use crate::conn::Conn;
use crate::route::Route;
use crate::stats::AtomicStats;

/// Per-worker knobs, copied out of the server config.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WorkerCfg {
    pub dispatch: Dispatch,
    /// Queued-output cap per connection: beyond it the socket is neither
    /// read nor dispatched for this tick (slow-reader backpressure —
    /// memory stays bounded by what the peer actually drains).
    pub max_conn_out_bytes: usize,
    /// Per-connection request cap per wave: a deeper pipeline spreads
    /// across successive waves, so one firehose connection cannot turn a
    /// wave into a latency cliff and the backpressure check runs between
    /// its slices.
    pub max_wave_run: usize,
    /// Sleep when a tick moved nothing (the poll loop's idle cost).
    pub idle_sleep: Duration,
    /// How long shutdown keeps flushing responses before dropping
    /// still-undrained connections.
    pub drain_timeout: Duration,
}

/// Runs one worker until `stop` is set and its pipeline is drained.
/// Consumes the route; dropping it on exit releases everything it held
/// (store mode: the shard slot leases; mesh mode: the caller links).
pub(crate) fn run(
    rx: &Receiver<std::net::TcpStream>,
    mut route: Route,
    validator: Validator,
    cfg: WorkerCfg,
    stats: &Arc<AtomicStats>,
    stop: &Arc<AtomicBool>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        let stopping = stop.load(Ordering::Acquire);
        // Adopt newly accepted connections.
        while let Ok(stream) = rx.try_recv() {
            if let Ok(conn) = Conn::new(stream) {
                conns.push(conn);
                stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
            }
        }

        let mut progressed = false;
        if !stopping {
            // Read phase: pull bytes and decode pipelines, skipping
            // connections whose peers aren't draining responses or whose
            // decoded pipeline is already deep enough for several waves.
            for conn in &mut conns {
                if conn.out_queued() > cfg.max_conn_out_bytes
                    || conn.pending.len() >= 2 * cfg.max_wave_run
                {
                    if conn.wants_read() {
                        stats.backpressure_skips.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
                progressed |= conn.poll_read();
            }
        }

        // Dispatch phase: waves until every dispatchable pipeline is
        // empty (backpressured connections keep theirs queued). On
        // shutdown this is the in-flight drain — everything already
        // decoded still commits and gets a response, so the out-bytes
        // gate lifts (reads stopped; the backlog is already bounded).
        // Flushing inside the loop keeps output moving between wave
        // slices of a deep pipeline, so the gate measures what the peer
        // has actually left undrained.
        let out_cap = if stopping { usize::MAX } else { cfg.max_conn_out_bytes };
        while let Some(mut wave) = Wave::build(&mut conns, &validator, cfg.max_wave_run, out_cap) {
            wave.dispatch_route(&mut route, cfg.dispatch, stats);
            wave.scatter(&mut conns, stats);
            for conn in &mut conns {
                conn.flush();
            }
            progressed = true;
        }

        // Write phase.
        for conn in &mut conns {
            progressed |= conn.flush();
        }
        let before = conns.len();
        conns.retain(|c| !c.done());
        stats.conns_closed.fetch_add((before - conns.len()) as u64, Ordering::Relaxed);

        if stopping {
            drain_and_close(&mut conns, cfg.drain_timeout, stats);
            break;
        }
        if !progressed {
            std::thread::sleep(cfg.idle_sleep);
        }
    }
    // `route` drops here: a store route returns every leased shard slot
    // to the registry, a mesh route retires its rings — a stopped server
    // leaks nothing from the store either way.
    drop(route);
}

/// Final flush on shutdown: keep writing until every response drains or
/// the deadline passes, then drop whatever remains.
fn drain_and_close(conns: &mut Vec<Conn>, timeout: Duration, stats: &AtomicStats) {
    let deadline = Instant::now() + timeout;
    while conns.iter().any(|c| c.out_queued() > 0) && Instant::now() < deadline {
        for conn in conns.iter_mut() {
            conn.flush();
        }
        let before = conns.len();
        conns.retain(|c| !c.done());
        stats.conns_closed.fetch_add((before - conns.len()) as u64, Ordering::Relaxed);
        std::thread::sleep(Duration::from_micros(100));
    }
    stats.conns_closed.fetch_add(conns.len() as u64, Ordering::Relaxed);
    conns.clear();
}
