//! Wide counters: the paper's fetch&increment example generalized to
//! counters wider than one machine word.
//!
//! A 64-bit counter can overflow in hours at modern increment rates; wide
//! counters (128-bit and beyond, or a counter plus metadata words updated
//! atomically together) are a standard motivating use of multiword RMW.

use std::sync::Arc;

use mwllsc::{AttachError, MwHandle};

use crate::cell::{Atomic, AtomicHandle};

/// A `2`-word (128-bit) shared counter built on the multiword object.
pub struct WideCounter {
    cell: Arc<Atomic<u128>>,
}

impl std::fmt::Debug for WideCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WideCounter").finish()
    }
}

impl WideCounter {
    /// Creates a counter for `n` processes starting at `initial`.
    #[must_use]
    pub fn new(n: usize, initial: u128) -> Self {
        Self { cell: Atomic::new(n, initial) }
    }

    /// Leases process `p`'s handle.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id or one leased by a live handle.
    #[must_use]
    pub fn claim(&self, p: usize) -> WideCounterHandle {
        WideCounterHandle { h: self.cell.claim(p) }
    }

    /// Leases a handle for any free slot; dropping it frees the slot.
    ///
    /// # Errors
    ///
    /// [`AttachError::Exhausted`] when all `n` slots are leased.
    pub fn attach(&self) -> Result<WideCounterHandle, AttachError> {
        Ok(WideCounterHandle { h: self.cell.attach()? })
    }

    /// All handles in process order.
    #[must_use]
    pub fn handles(&self) -> Vec<WideCounterHandle> {
        (0..self.cell.raw().processes()).map(|p| self.claim(p)).collect()
    }
}

/// Per-process handle to a [`WideCounter`].
///
/// Generic over the backing [`MwHandle`]; defaults to the paper's
/// [`mwllsc::Handle`].
pub struct WideCounterHandle<H: MwHandle = mwllsc::Handle> {
    h: AtomicHandle<u128, H>,
}

impl<H: MwHandle> std::fmt::Debug for WideCounterHandle<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WideCounterHandle").finish()
    }
}

impl<H: MwHandle> WideCounterHandle<H> {
    /// Wraps any 2-word [`MwHandle`] as a 128-bit counter handle.
    ///
    /// # Panics
    ///
    /// Panics if the object is not 2 words wide.
    #[must_use]
    pub fn from_raw(inner: H) -> Self {
        Self { h: AtomicHandle::from_raw(inner) }
    }
    /// Atomically adds `delta`, returning the new value (lock-free RMW).
    pub fn add(&mut self, delta: u128) -> u128 {
        self.h.fetch_update(|x| x.wrapping_add(delta))
    }

    /// Atomically increments, returning the new value.
    pub fn increment(&mut self) -> u128 {
        self.add(1)
    }

    /// Reads the current value (wait-free).
    pub fn get(&mut self) -> u128 {
        self.h.load()
    }
}

/// A statistics cell updated atomically as one unit: count, sum, min, max.
///
/// The canonical "multiword or bust" example: these four words must move
/// together or aggregates drift (e.g. `sum` from one update with `count`
/// from another).
pub struct StatsCell {
    cell: Arc<Atomic<[u64; 4]>>,
}

impl std::fmt::Debug for StatsCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsCell").finish()
    }
}

/// A consistent snapshot of a [`StatsCell`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Minimum sample (`u64::MAX` when empty).
    pub min: u64,
    /// Maximum sample (0 when empty).
    pub max: u64,
}

impl StatsCell {
    /// Creates an empty stats cell for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { cell: Atomic::new(n, [0, 0, u64::MAX, 0]) }
    }

    /// Leases process `p`'s handle.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id or one leased by a live handle.
    #[must_use]
    pub fn claim(&self, p: usize) -> StatsHandle {
        StatsHandle { h: self.cell.claim(p) }
    }

    /// Leases a handle for any free slot; dropping it frees the slot.
    ///
    /// # Errors
    ///
    /// [`AttachError::Exhausted`] when all `n` slots are leased.
    pub fn attach(&self) -> Result<StatsHandle, AttachError> {
        Ok(StatsHandle { h: self.cell.attach()? })
    }

    /// All handles in process order.
    #[must_use]
    pub fn handles(&self) -> Vec<StatsHandle> {
        (0..self.cell.raw().processes()).map(|p| self.claim(p)).collect()
    }
}

/// Per-process handle to a [`StatsCell`].
///
/// Generic over the backing [`MwHandle`]; defaults to the paper's
/// [`mwllsc::Handle`].
pub struct StatsHandle<H: MwHandle = mwllsc::Handle> {
    h: AtomicHandle<[u64; 4], H>,
}

impl<H: MwHandle> std::fmt::Debug for StatsHandle<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsHandle").finish()
    }
}

impl<H: MwHandle> StatsHandle<H> {
    /// Wraps any 4-word [`MwHandle`] as a stats-cell handle.
    ///
    /// # Panics
    ///
    /// Panics if the object is not 4 words wide.
    #[must_use]
    pub fn from_raw(inner: H) -> Self {
        Self { h: AtomicHandle::from_raw(inner) }
    }
    /// Atomically records one sample (lock-free RMW).
    pub fn record(&mut self, sample: u64) {
        self.h.fetch_update(|[count, sum, min, max]| {
            [count + 1, sum.wrapping_add(sample), min.min(sample), max.max(sample)]
        });
    }

    /// Reads a *consistent* snapshot (wait-free): all four aggregates stem
    /// from the same set of updates.
    pub fn snapshot(&mut self) -> StatsSnapshot {
        let [count, sum, min, max] = self.h.load();
        StatsSnapshot { count, sum, min, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_counter_crosses_word_boundary() {
        let c = WideCounter::new(1, u128::from(u64::MAX) - 1);
        let mut h = c.claim(0);
        h.increment();
        h.increment();
        h.increment();
        assert_eq!(h.get(), u128::from(u64::MAX) + 2, "carry must propagate to word 1");
    }

    #[test]
    fn wide_counter_concurrent_exact() {
        const THREADS: usize = 4;
        const PER: usize = 8_000;
        let c = WideCounter::new(THREADS, 0);
        let mut handles = c.handles();
        let mut h0 = handles.remove(0);
        let mut joins = Vec::new();
        for mut h in handles {
            joins.push(std::thread::spawn(move || {
                for _ in 0..PER {
                    h.increment();
                }
            }));
        }
        for _ in 0..PER {
            h0.increment();
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h0.get(), (THREADS * PER) as u128);
    }

    #[test]
    fn stats_cell_sequential() {
        let s = StatsCell::new(1);
        let mut h = s.claim(0);
        for x in [5u64, 1, 9, 3] {
            h.record(x);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 18);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 9);
    }

    #[test]
    fn stats_cell_concurrent_consistency() {
        // Writers record only the value 7; every concurrent snapshot must
        // satisfy sum == 7 * count and min == max == 7 (or be empty) —
        // any torn multiword view breaks one of these equalities.
        const THREADS: usize = 3;
        let s = StatsCell::new(THREADS + 1);
        let mut handles = s.handles();
        let mut reader = handles.remove(0);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut joins = Vec::new();
        for mut h in handles {
            let stop = Arc::clone(&stop);
            joins.push(std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    h.record(7);
                }
            }));
        }
        for _ in 0..30_000 {
            let snap = reader.snapshot();
            assert_eq!(snap.sum, 7 * snap.count, "inconsistent snapshot: {snap:?}");
            if snap.count > 0 {
                assert_eq!(snap.min, 7);
                assert_eq!(snap.max, 7);
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for j in joins {
            j.join().unwrap();
        }
    }
}
