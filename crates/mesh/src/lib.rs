//! `mwllsc-mesh`: thread-per-core shared-nothing shard ownership over
//! SPSC rings.
//!
//! The paper's MwLlSc keeps every process hammering the same
//! `X`/`Bank`/`Help` cache lines, so past a handful of cores the sharded
//! store's ceiling is cross-shard coherence traffic, not the algorithm
//! (conf_icdcs_JayantiP05 counts *shared accesses*; symmetric
//! [`StoreHandle`](mwllsc_store::StoreHandle)s lease slots — and RMW —
//! on every shard they touch). This crate inverts the sharing: each
//! shard is pinned to exactly one worker thread, and remote operations
//! travel as fixed-size messages over bounded single-producer/
//! single-consumer rings instead of contended RMWs.
//!
//! ```text
//!  caller A ──req ring──▶ worker 0 ◀──req ring── caller B
//!     ▲                     │ one StoreHandle,          ▲
//!     └──────reply ring─────┤ shards {0, N, 2N, …}      │
//!                           ▼                           │
//!                    Store<B> shards ──reply ring───────┘
//! ```
//!
//! - [`ring`]: the cache-padded SPSC ring (facade atomics, `RINGH`/
//!   `RINGT` ordering cells, allocation-free hot path).
//! - [`Mesh`]: owns the workers, partitions shards by the store's FNV
//!   router (`shard % workers`), drains inbound rings in waves, and
//!   dispatches through the store's `update_many_dyn`/`read_many_into`
//!   batch primitives — cross-caller coalescing falls out for free.
//! - [`MeshHandle`]: the caller surface — the same typed-error
//!   get/set/update/read_many shape as `StoreHandle`, with declarative
//!   updates ([`UpdateKind`]) since closures cannot cross rings.
//!
//! Exactness: an op that returns `Ok` was applied exactly once; an op
//! that returns [`MeshError::Disconnected`] was never applied (shutdown
//! drains accepted work before reporting links dead). There is no
//! in-between.
//!
//! ```
//! use mwllsc_store::{Store, StoreConfig};
//! use mwllsc_mesh::{Mesh, MeshConfig, UpdateKind};
//!
//! let store = Store::new(StoreConfig::new(8, 4, 2, 1024));
//! let mesh = Mesh::try_new(store, MeshConfig::default().with_workers(2)).unwrap();
//! let mut h = mesh.attach();
//! h.set(7, &[1, 2]).unwrap();
//! assert_eq!(h.update(7, UpdateKind::Add, &[10, 10]).unwrap(), vec![11, 12]);
//! assert_eq!(h.read_vec(7).unwrap(), vec![11, 12]);
//! mesh.shutdown();
//! assert_eq!(mesh.store().live_slot_leases(), 0);
//! ```

mod handle;
mod link;
mod mesh;
mod msg;
pub mod ring;
mod worker;

pub use handle::MeshHandle;
pub use mesh::{Mesh, MeshConfig, MeshStats, OCC_BUCKETS};
pub use msg::{InlineVal, MeshError, UpdateKind, MAX_INLINE_WIDTH};
