//! Deterministic simulation, schedule exploration, and verification
//! tooling for the Jayanti–Petrovic multiword LL/SC algorithm.
//!
//! The real implementation (`mwllsc`) runs on hardware atomics, where
//! schedules cannot be controlled or reproduced. This crate re-implements
//! the *same* Figure 2 pseudocode as an interpreter whose every atomic
//! action (one shared-memory access, one buffer-word copy) is a separate
//! step driven by a pluggable [`Scheduler`]. On top of that it provides:
//!
//! * [`word`] — abstract single-word LL/SC/VL objects with the exact
//!   Figure 1 semantics (explicit per-process link bits, no tags);
//! * [`interp`] — the PC-level interpreter (states = the paper's line
//!   numbers) with per-operation step counting;
//! * [`sched`] — round-robin, seeded-random, weighted, and
//!   victim-starvation schedulers;
//! * [`invariants`] — online monitors for the paper's invariant I1
//!   (buffer-ownership distinctness), invariant I2 (exactly one lazy
//!   `Bank` fix-up per `X` interval), Lemma 3 (2N-change buffer
//!   stability), and the wait-freedom step bounds of Theorem 1;
//! * [`wg`] — a Wing–Gong linearizability checker for LL/SC/VL histories
//!   (handles pending operations);
//! * [`runner`] — checked runs: schedule + workload in, history +
//!   verdict out;
//! * [`explore`] — exhaustive DFS over *all* schedules for small
//!   configurations, with memoization on the full machine state;
//! * [`real`] — model checking of the *shipping* `mwllsc`/`llsc-word`
//!   code: a controller that serializes real threads at every facade
//!   access, a sleep-set DFS over those interleavings, and (under
//!   `--cfg mwllsc_model`) scenario bridges lock-stepping the compiled
//!   code against the interpreter.
//!
//! Together these regenerate the paper's correctness claims (experiments
//! E5 and E6 in `EXPERIMENTS.md`): linearizability on hundreds of
//! thousands of adversarial and random schedules, invariants on every
//! single step, and the `O(W)` wait-freedom bound as a hard assertion.
//!
//! # Example: a checked adversarial run
//!
//! ```
//! use simsched::interp::SimOp;
//! use simsched::runner::{run, RunConfig, Sim};
//! use simsched::sched::StarveVictim;
//! use simsched::wg::{check_linearizable, CheckConfig};
//!
//! // Process 0 performs one LL while three writers storm the object.
//! let mut programs = vec![vec![SimOp::Ll]];
//! for _ in 0..3 {
//!     programs.push(vec![
//!         SimOp::Ll, SimOp::ScBump(1),
//!         SimOp::Ll, SimOp::ScBump(1),
//!     ]);
//! }
//! let sim = Sim::new(2, &[0, 0], programs);
//! let mut sched = StarveVictim::new(0, 40);
//! let report = run(sim, &mut sched, &RunConfig::default()).unwrap();
//! assert!(report.completed);
//! check_linearizable(&report.history, &[0, 0], CheckConfig::default()).unwrap();
//! ```

#![warn(missing_docs, missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod explore;
pub mod history;
pub mod interp;
pub mod invariants;
pub mod lp;
pub mod real;
pub mod rng;
pub mod runner;
pub mod sched;
pub mod state;
pub mod wg;
pub mod word;

pub use history::History;
pub use invariants::Violation;
pub use lp::LpMonitor;
pub use runner::{run, run_with_crashes, RunConfig, RunReport, Sim};
pub use sched::Scheduler;
pub use state::SimState;
pub use wg::{check_linearizable, CheckConfig, LinzError};
