//! The capability trait every multiword LL/SC implementation is driven
//! through: [`MwHandle`], plus the [`Progress`] and [`SpaceEstimate`]
//! vocabulary types.
//!
//! This used to live in the `llsc-baselines` crate, which wired the whole
//! application layer to the paper's concrete [`Handle`] type. It now lives
//! here in the core so that *consumers* (the `mwllsc-apps` crate, the
//! benches, the experiment harness) can be generic over any
//! implementation — the paper's algorithm, the Anderson–Moir-style
//! reconstruction, locks, seqlocks, pointer swaps — while *producers* only
//! depend on the core crate they already build on.

use std::sync::Arc;

use llsc_word::{EpochLlSc, NewCell, TaggedLlSc};

use crate::handle::Handle;
use crate::layout::Layout;
use crate::stats::Stats;
use crate::variable::{ClaimError, ConfigError, LlStrategy, MwLlSc};

/// A per-process handle to some `W`-word LL/SC/VL object.
///
/// Semantics are those of the paper's Figure 1; progress guarantees differ
/// per implementation and are reported by [`progress`](Self::progress).
///
/// # Examples
///
/// Code written against `MwHandle` runs over every implementation:
///
/// ```
/// use mwllsc::{MwHandle, MwLlSc};
///
/// fn increment_first_word<H: MwHandle>(h: &mut H) -> u64 {
///     let mut v = vec![0u64; h.width()];
///     loop {
///         h.ll(&mut v);
///         v[0] += 1;
///         if h.sc(&v) {
///             return v[0];
///         }
///     }
/// }
///
/// let obj = MwLlSc::new(2, 3, &[0, 0, 0]);
/// let mut h = obj.attach().unwrap();
/// assert_eq!(increment_first_word(&mut h), 1);
/// ```
pub trait MwHandle: Send + std::fmt::Debug {
    /// Load-linked: reads the current value into `out`.
    fn ll(&mut self, out: &mut [u64]);

    /// Store-conditional: installs `v` iff no successful SC intervened
    /// since this process's latest `ll`.
    fn sc(&mut self, v: &[u64]) -> bool;

    /// Validate: `true` iff no successful SC intervened since the latest
    /// `ll`.
    fn vl(&mut self) -> bool;

    /// Reads the current value into `out` **without** linking: the outcome
    /// of a pending `sc`/`vl` for this process is unaffected.
    fn read(&mut self, out: &mut [u64]);

    /// Words per value.
    fn width(&self) -> usize;

    /// The progress guarantee this implementation provides.
    fn progress(&self) -> Progress;

    /// Space accounting for the object this handle operates on.
    fn space(&self) -> SpaceEstimate;
}

/// Progress guarantee provided by an implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Progress {
    /// Every operation completes in a bounded number of the caller's steps.
    WaitFree,
    /// System-wide progress; individual operations may retry unboundedly.
    LockFree,
    /// A stalled or crashed process can block everyone.
    Blocking,
}

impl std::fmt::Display for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::WaitFree => "wait-free",
            Self::LockFree => "lock-free",
            Self::Blocking => "blocking",
        })
    }
}

/// Asymptotic + exact space accounting for one object instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpaceEstimate {
    /// Exact shared 64-bit words allocated for the object (steady state,
    /// live structures only).
    pub shared_words: usize,
    /// 64-bit words currently held by retired-but-not-yet-reclaimed
    /// garbage (the reclamation limbo backlog), sampled at call time.
    /// Zero for the statically-bounded algorithms; for the pointer-swap
    /// substrates it is bounded by `O(threads × bag size)` but never
    /// zero-by-omission — the estimate is honest about what the process
    /// is actually holding.
    pub retired_words: usize,
    /// The asymptotic class, e.g. `"O(NW)"`.
    pub asymptotic: &'static str,
}

impl SpaceEstimate {
    /// Everything the object is currently holding: live structures plus
    /// the reclamation backlog.
    #[must_use]
    pub fn total_words(&self) -> usize {
        self.shared_words + self.retired_words
    }
}

/// A *constructor* capability: everything a pooling layer (such as
/// `mwllsc-store`) needs to materialize `W`-word LL/SC objects of one
/// implementation and lease per-process handles on them — without naming
/// the concrete object type.
///
/// [`MwHandle`] abstracts over a handle that already exists; `MwFactory`
/// widens that to *object construction*, so a sharded key table can
/// materialize paper objects, substrate ablations, or baseline
/// implementations behind one generic parameter. Implementors are
/// zero-sized marker types (the "backend" vocabulary of the store crate):
/// [`PaperBackend`], [`EpochBackend`], [`PaperRetryBackend`] here, plus
/// one marker per baseline in `llsc-baselines`.
///
/// # Contract
///
/// * `try_build(n, w, init)` validates with [`ConfigError::validate`]
///   semantics: `n`/`w` nonzero, `init.len() == w`,
///   `n <= max_processes()`.
/// * `try_claim(obj, p)` leases process id `p` exclusively: it fails with
///   [`ClaimError::AlreadyClaimed`] while another live handle holds `p`,
///   and dropping the handle frees the id (lease semantics, for every
///   backend).
/// * `object_shared_words(n, w)` is the *exact* steady-state shared words
///   one object costs — consumers assert space rollups against it, so it
///   must match what the objects actually allocate.
///
/// # Examples
///
/// ```
/// use mwllsc::traits::{MwFactory, MwHandle, PaperBackend};
///
/// fn bump_first_word<B: MwFactory>(initial: &[u64]) -> u64 {
///     let obj = B::try_build(2, initial.len(), initial).unwrap();
///     let mut h = B::try_claim(&obj, 0).unwrap();
///     let mut v = vec![0u64; initial.len()];
///     loop {
///         h.ll(&mut v);
///         v[0] += 1;
///         if h.sc(&v) {
///             return v[0];
///         }
///     }
/// }
///
/// assert_eq!(bump_first_word::<PaperBackend>(&[41, 0]), 42);
/// ```
pub trait MwFactory: Send + Sync + 'static {
    /// The shared object type this backend builds.
    type Object: Send + Sync + 'static;

    /// The per-process handle leased from an object.
    type Handle: MwHandle + 'static;

    /// Short display name used in table rows and store reports.
    const NAME: &'static str;

    /// The progress guarantee objects of this backend provide.
    fn progress() -> Progress;

    /// Largest admissible process count per object.
    fn max_processes() -> usize {
        usize::MAX
    }

    /// Builds one object for `n` processes and `w`-word values.
    fn try_build(n: usize, w: usize, initial: &[u64]) -> Result<Arc<Self::Object>, ConfigError>;

    /// Leases process id `p`'s handle on `obj` (exclusive while live;
    /// dropping the handle frees the id).
    fn try_claim(obj: &Arc<Self::Object>, p: usize) -> Result<Self::Handle, ClaimError>;

    /// Exact steady-state shared words one `(n, w)` object costs, as a
    /// closed-form formula (consumers size and assert against this
    /// without building anything).
    fn object_shared_words(n: usize, w: usize) -> usize;

    /// Shared words `obj` *actually reports* about itself (its own space
    /// accounting). Deliberately separate from
    /// [`object_shared_words`](Self::object_shared_words): rollups sum
    /// this measured figure and assert it equals `touched × formula`, so
    /// a formula that drifts from what the objects allocate is caught,
    /// not defined away.
    fn measured_shared_words(obj: &Self::Object) -> usize;

    /// 64-bit words currently held in `obj`'s reclamation backlog
    /// (retired but not yet freed); zero for statically-bounded backends.
    fn retired_words(obj: &Self::Object) -> usize {
        let _ = obj;
        0
    }

    /// `obj`'s instrumentation counters; all-zero where the backend has
    /// none (only the paper algorithm counts its helping paths).
    fn object_stats(obj: &Self::Object) -> Stats {
        let _ = obj;
        Stats::default()
    }
}

/// The paper's algorithm over the default tagged-CAS substrate — the
/// backend every consumer gets unless it asks for another.
#[derive(Clone, Copy, Debug, Default)]
pub struct PaperBackend;

/// The paper's algorithm over the [`EpochLlSc`] pointer-swap substrate:
/// same Figure-2 logic, but every single-word cell is an atomic pointer
/// with epoch-based reclamation — the substrate ablation, now available
/// as a store backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochBackend;

/// The paper's algorithm with the retry-loop LL ablation (lock-free, not
/// wait-free): measures what the helping machinery buys at store scale.
#[derive(Clone, Copy, Debug, Default)]
pub struct PaperRetryBackend;

/// Shared words of one paper object: `3NW` buffer words plus the
/// `3N + 1` single-word cells (`X`, `Bank[2N]`, `Help[N]`).
fn paper_shared_words(n: usize, w: usize) -> usize {
    3 * n * w + 3 * n + 1
}

impl MwFactory for PaperBackend {
    type Object = MwLlSc<TaggedLlSc>;
    type Handle = Handle<TaggedLlSc>;

    const NAME: &'static str = "paper";

    fn progress() -> Progress {
        Progress::WaitFree
    }

    fn max_processes() -> usize {
        Layout::MAX_PROCESSES
    }

    fn try_build(n: usize, w: usize, initial: &[u64]) -> Result<Arc<Self::Object>, ConfigError> {
        MwLlSc::try_new(n, w, initial)
    }

    fn try_claim(obj: &Arc<Self::Object>, p: usize) -> Result<Self::Handle, ClaimError> {
        obj.claim(p)
    }

    fn object_shared_words(n: usize, w: usize) -> usize {
        paper_shared_words(n, w)
    }

    fn measured_shared_words(obj: &Self::Object) -> usize {
        obj.space().shared_words()
    }

    fn object_stats(obj: &Self::Object) -> Stats {
        obj.stats()
    }
}

impl MwFactory for EpochBackend {
    type Object = MwLlSc<EpochLlSc>;
    type Handle = Handle<EpochLlSc>;

    const NAME: &'static str = "paper-epoch";

    fn progress() -> Progress {
        Progress::WaitFree
    }

    fn max_processes() -> usize {
        Layout::MAX_PROCESSES
    }

    fn try_build(n: usize, w: usize, initial: &[u64]) -> Result<Arc<Self::Object>, ConfigError> {
        MwLlSc::try_new_in(n, w, initial)
    }

    fn try_claim(obj: &Arc<Self::Object>, p: usize) -> Result<Self::Handle, ClaimError> {
        obj.claim(p)
    }

    fn object_shared_words(n: usize, w: usize) -> usize {
        // The paper's layout (3NW buffer words + 3N + 1 cells), plus the
        // live heap node each epoch cell points at: the indirection is
        // the substrate's real cost and must not be hidden when this
        // backend sits next to in-place designs in a space table.
        paper_shared_words(n, w) + (3 * n + 1) * EpochLlSc::live_node_words()
    }

    fn measured_shared_words(obj: &Self::Object) -> usize {
        let space = obj.space();
        space.shared_words() + space.llsc_cells * EpochLlSc::live_node_words()
    }

    fn retired_words(obj: &Self::Object) -> usize {
        obj.substrate_retired_words()
    }

    fn object_stats(obj: &Self::Object) -> Stats {
        obj.stats()
    }
}

impl MwFactory for PaperRetryBackend {
    type Object = MwLlSc<TaggedLlSc>;
    type Handle = Handle<TaggedLlSc>;

    const NAME: &'static str = "paper-retry-ll";

    fn progress() -> Progress {
        Progress::LockFree
    }

    fn max_processes() -> usize {
        Layout::MAX_PROCESSES
    }

    fn try_build(n: usize, w: usize, initial: &[u64]) -> Result<Arc<Self::Object>, ConfigError> {
        MwLlSc::try_with_strategy(n, w, initial, LlStrategy::RetryLoop)
    }

    fn try_claim(obj: &Arc<Self::Object>, p: usize) -> Result<Self::Handle, ClaimError> {
        obj.claim(p)
    }

    fn object_shared_words(n: usize, w: usize) -> usize {
        paper_shared_words(n, w)
    }

    fn measured_shared_words(obj: &Self::Object) -> usize {
        obj.space().shared_words()
    }

    fn object_stats(obj: &Self::Object) -> Stats {
        obj.stats()
    }
}

// The paper's algorithm satisfies its own capability trait, over any
// substrate.
impl<C: NewCell> MwHandle for Handle<C> {
    fn ll(&mut self, out: &mut [u64]) {
        Handle::ll(self, out);
    }

    fn sc(&mut self, v: &[u64]) -> bool {
        Handle::sc(self, v)
    }

    fn vl(&mut self) -> bool {
        Handle::vl(self)
    }

    fn read(&mut self, out: &mut [u64]) {
        Handle::read(self, out);
    }

    fn width(&self) -> usize {
        self.object().width()
    }

    fn progress(&self) -> Progress {
        match self.object().strategy() {
            LlStrategy::WaitFree => Progress::WaitFree,
            LlStrategy::RetryLoop => Progress::LockFree,
        }
    }

    fn space(&self) -> SpaceEstimate {
        SpaceEstimate {
            shared_words: self.object().space().shared_words(),
            // The paper's algorithm has no dynamic allocation, but the
            // *substrate* may (the epoch-pointer cells); report whatever
            // limbo backlog the cells are carrying rather than hiding it.
            retired_words: self.object().substrate_retired_words(),
            asymptotic: "O(NW)",
        }
    }
}

// Boxed and borrowed handles forward, so `Box<dyn MwHandle>` (the factory
// output) and `&mut H` (scoped lending, e.g. inside `MwLlSc::with`) slot
// into generic consumers directly.
impl<H: MwHandle + ?Sized> MwHandle for Box<H> {
    fn ll(&mut self, out: &mut [u64]) {
        (**self).ll(out);
    }

    fn sc(&mut self, v: &[u64]) -> bool {
        (**self).sc(v)
    }

    fn vl(&mut self) -> bool {
        (**self).vl()
    }

    fn read(&mut self, out: &mut [u64]) {
        (**self).read(out);
    }

    fn width(&self) -> usize {
        (**self).width()
    }

    fn progress(&self) -> Progress {
        (**self).progress()
    }

    fn space(&self) -> SpaceEstimate {
        (**self).space()
    }
}

impl<H: MwHandle + ?Sized> MwHandle for &mut H {
    fn ll(&mut self, out: &mut [u64]) {
        (**self).ll(out);
    }

    fn sc(&mut self, v: &[u64]) -> bool {
        (**self).sc(v)
    }

    fn vl(&mut self) -> bool {
        (**self).vl()
    }

    fn read(&mut self, out: &mut [u64]) {
        (**self).read(out);
    }

    fn width(&self) -> usize {
        (**self).width()
    }

    fn progress(&self) -> Progress {
        (**self).progress()
    }

    fn space(&self) -> SpaceEstimate {
        (**self).space()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::MwLlSc;

    fn drive<H: MwHandle>(h: &mut H) {
        let w = h.width();
        let mut v = vec![0u64; w];
        h.ll(&mut v);
        assert!(h.vl());
        v[0] += 1;
        assert!(h.sc(&v));
        let mut r = vec![0u64; w];
        h.read(&mut r);
        assert_eq!(r, v);
    }

    #[test]
    fn handle_satisfies_trait_directly_boxed_and_borrowed() {
        let obj = MwLlSc::new(3, 2, &[0, 0]);
        let mut h = obj.attach().unwrap();
        drive(&mut h);
        drive(&mut (&mut h)); // &mut H forwarding
        let mut boxed: Box<dyn MwHandle> = Box::new(obj.attach().unwrap());
        drive(&mut boxed);
        assert_eq!(boxed.progress(), Progress::WaitFree);
        assert_eq!(boxed.space().shared_words, obj.space().shared_words());
        assert_eq!(boxed.space().asymptotic, "O(NW)");
    }

    fn drive_factory<B: MwFactory>() {
        assert!(B::try_build(0, 1, &[0]).is_err(), "{}: zero processes", B::NAME);
        assert!(B::try_build(1, 0, &[]).is_err(), "{}: zero words", B::NAME);
        assert!(B::try_build(2, 2, &[1]).is_err(), "{}: wrong init len", B::NAME);
        let obj = B::try_build(2, 2, &[7, 8]).unwrap();
        let mut h = B::try_claim(&obj, 0).unwrap();
        assert!(matches!(B::try_claim(&obj, 0), Err(ClaimError::AlreadyClaimed { p: 0 })));
        assert!(matches!(B::try_claim(&obj, 2), Err(ClaimError::OutOfRange { p: 2, n: 2 })));
        drive(&mut h);
        drop(h);
        let _re = B::try_claim(&obj, 0).expect("dropping the handle frees the id");
    }

    #[test]
    fn factory_backends_build_claim_and_lease() {
        drive_factory::<PaperBackend>();
        drive_factory::<EpochBackend>();
        drive_factory::<PaperRetryBackend>();
        assert_eq!(PaperBackend::progress(), Progress::WaitFree);
        assert_eq!(PaperRetryBackend::progress(), Progress::LockFree);
        assert_eq!(PaperBackend::object_shared_words(3, 2), 3 * 3 * 2 + 3 * 3 + 1);
        // The formula must match what the object actually allocates.
        let obj = PaperBackend::try_build(3, 2, &[0, 0]).unwrap();
        assert_eq!(obj.space().shared_words(), PaperBackend::object_shared_words(3, 2));
    }

    #[test]
    fn retry_strategy_reports_lock_free() {
        let obj = MwLlSc::try_with_strategy(1, 1, &[0], LlStrategy::RetryLoop).unwrap();
        let h = obj.attach().unwrap();
        assert_eq!(MwHandle::progress(&h), Progress::LockFree);
    }
}
