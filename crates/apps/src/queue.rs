//! A wait-free bounded FIFO queue via the universal construction.
//!
//! Demonstrates the paper's "abstractions that simplify design" thesis:
//! given the multiword LL/SC variable, a correct wait-free queue is a
//! *sequential* ring buffer plus [`Sequential`] glue — no bespoke
//! concurrent reasoning at all.

use std::sync::Arc;

use mwllsc::{AttachError, MwHandle};

use crate::universal::{Sequential, Universal, UniversalHandle};

/// The sequential ring buffer stored inside the shared variable.
///
/// Layout: `[head, tail, slots[0..capacity]]` — `head`/`tail` are monotone
/// counters; the occupied region is `head..tail`, values are 32-bit.
#[derive(Clone, Debug)]
pub struct RingState {
    head: u64,
    tail: u64,
    slots: Vec<u64>,
}

/// Queue operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueOp {
    /// Enqueue a 31-bit value; response 1 on success, 0 if full.
    Enqueue(u32),
    /// Dequeue; response `(1 << 32) | value` on success, 0 if empty.
    Dequeue,
}

/// Response value of a successful dequeue: `(1 << 32) | value`.
const DEQ_OK: u64 = 1 << 32;

impl RingState {
    /// An empty ring of the given `capacity` (public so external objects
    /// can be initialized for [`WaitFreeQueue::from_handles`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self { head: 0, tail: 0, slots: vec![0; capacity] }
    }

    fn len(&self) -> u64 {
        self.tail - self.head
    }
}

impl Sequential for RingState {
    type Op = QueueOp;

    fn state_words(&self) -> usize {
        2 + self.slots.len()
    }

    fn encode(&self, out: &mut [u64]) {
        out[0] = self.head;
        out[1] = self.tail;
        out[2..].copy_from_slice(&self.slots);
    }

    fn decode(&self, words: &[u64]) -> Self {
        Self { head: words[0], tail: words[1], slots: words[2..].to_vec() }
    }

    fn encode_op(op: QueueOp) -> u32 {
        match op {
            QueueOp::Enqueue(v) => {
                assert!(v < (1 << 31), "queue values are 31-bit");
                (1 << 31) | v
            }
            QueueOp::Dequeue => 0,
        }
    }

    fn decode_op(bits: u32) -> QueueOp {
        if bits >> 31 == 1 {
            QueueOp::Enqueue(bits & 0x7FFF_FFFF)
        } else {
            QueueOp::Dequeue
        }
    }

    fn apply(&mut self, op: QueueOp) -> u64 {
        match op {
            QueueOp::Enqueue(v) => {
                if self.len() as usize == self.slots.len() {
                    0 // full
                } else {
                    let idx = (self.tail % self.slots.len() as u64) as usize;
                    self.slots[idx] = u64::from(v);
                    self.tail += 1;
                    1
                }
            }
            QueueOp::Dequeue => {
                if self.head == self.tail {
                    0 // empty
                } else {
                    let idx = (self.head % self.slots.len() as u64) as usize;
                    let v = self.slots[idx];
                    self.head += 1;
                    DEQ_OK | v
                }
            }
        }
    }
}

/// A wait-free bounded multi-producer multi-consumer FIFO queue.
pub struct WaitFreeQueue {
    uni: Arc<Universal<RingState>>,
}

impl std::fmt::Debug for WaitFreeQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitFreeQueue").finish()
    }
}

impl WaitFreeQueue {
    /// Creates a queue of the given `capacity` for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `capacity == 0`.
    #[must_use]
    pub fn new(n: usize, capacity: usize) -> Self {
        Self { uni: Universal::new(n, &RingState::new(capacity)) }
    }

    /// Leases process `p`'s handle.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id or one leased by a live handle.
    #[must_use]
    pub fn claim(&self, p: usize) -> QueueHandle {
        QueueHandle { h: self.uni.claim(p) }
    }

    /// Leases a handle for any free slot; dropping it frees the slot.
    ///
    /// # Errors
    ///
    /// [`AttachError::Exhausted`] when all `n` slots are leased.
    pub fn attach(&self) -> Result<QueueHandle, AttachError> {
        Ok(QueueHandle { h: self.uni.attach()? })
    }

    /// All handles in process order.
    #[must_use]
    pub fn handles(&self) -> Vec<QueueHandle> {
        (0..self.uni.raw().processes()).map(|p| self.claim(p)).collect()
    }

    /// Runs the queue over externally built handles to **any** LL/SC
    /// implementation (one handle per process; the backing object must be
    /// `RingState::new(capacity).state_words() + 2N` words wide and
    /// initialized to `Universal::initial_words`).
    ///
    /// # Panics
    ///
    /// Panics if `handles` is empty or a handle's width does not match.
    #[must_use]
    pub fn from_handles<H: MwHandle>(capacity: usize, handles: Vec<H>) -> Vec<QueueHandle<H>> {
        Universal::from_handles(&RingState::new(capacity), handles)
            .into_iter()
            .map(|h| QueueHandle { h })
            .collect()
    }
}

/// Per-process handle to a [`WaitFreeQueue`].
///
/// Generic over the backing [`MwHandle`]; defaults to the paper's
/// [`mwllsc::Handle`].
pub struct QueueHandle<H: MwHandle = mwllsc::Handle> {
    h: UniversalHandle<RingState, H>,
}

impl<H: MwHandle> std::fmt::Debug for QueueHandle<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueHandle").finish()
    }
}

impl<H: MwHandle> QueueHandle<H> {
    /// Enqueues `v` (31-bit). Returns `false` if the queue was full.
    /// Wait-free.
    pub fn enqueue(&mut self, v: u32) -> bool {
        self.h.apply(QueueOp::Enqueue(v)) == 1
    }

    /// Dequeues the oldest element, or `None` if empty. Wait-free.
    pub fn dequeue(&mut self) -> Option<u32> {
        let r = self.h.apply(QueueOp::Dequeue);
        (r & DEQ_OK != 0).then_some(r as u32)
    }

    /// Current length (wait-free consistent read).
    pub fn len(&mut self) -> usize {
        self.h.read_state().len() as usize
    }

    /// Whether the queue is empty (wait-free consistent read).
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = WaitFreeQueue::new(1, 4);
        let mut h = q.claim(0);
        assert!(h.enqueue(1));
        assert!(h.enqueue(2));
        assert!(h.enqueue(3));
        assert_eq!(h.dequeue(), Some(1));
        assert_eq!(h.dequeue(), Some(2));
        assert!(h.enqueue(4));
        assert_eq!(h.dequeue(), Some(3));
        assert_eq!(h.dequeue(), Some(4));
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn capacity_enforced() {
        let q = WaitFreeQueue::new(1, 2);
        let mut h = q.claim(0);
        assert!(h.enqueue(1));
        assert!(h.enqueue(2));
        assert!(!h.enqueue(3), "queue is full");
        assert_eq!(h.len(), 2);
        assert_eq!(h.dequeue(), Some(1));
        assert!(h.enqueue(3), "slot freed");
    }

    #[test]
    fn wraparound_many_times() {
        let q = WaitFreeQueue::new(1, 3);
        let mut h = q.claim(0);
        for i in 0..1000u32 {
            assert!(h.enqueue(i));
            assert_eq!(h.dequeue(), Some(i));
        }
        assert!(h.is_empty());
    }

    #[test]
    fn zero_value_roundtrips() {
        // Value 0 must be distinguishable from "empty".
        let q = WaitFreeQueue::new(1, 2);
        let mut h = q.claim(0);
        assert!(h.enqueue(0));
        assert_eq!(h.dequeue(), Some(0));
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn mpmc_conservation() {
        // Producers enqueue distinct values; consumers drain. Every value
        // is dequeued exactly once (no loss, no duplication).
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER: u32 = 2_000;
        let q = WaitFreeQueue::new(PRODUCERS + CONSUMERS, 64);
        let mut handles = q.handles();
        let mut joins = Vec::new();
        for p in 0..PRODUCERS {
            let mut h = handles.remove(0);
            joins.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let v = (p as u32) * PER + i;
                    while !h.enqueue(v) {
                        std::hint::spin_loop();
                    }
                }
                Vec::new()
            }));
        }
        let consumed = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        for _ in 0..CONSUMERS {
            let mut h = handles.remove(0);
            let consumed = std::sync::Arc::clone(&consumed);
            joins.push(std::thread::spawn(move || {
                let total = PER * PRODUCERS as u32;
                let mut got = Vec::new();
                loop {
                    match h.dequeue() {
                        Some(v) => {
                            got.push(v);
                            consumed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        None => {
                            if consumed.load(std::sync::atomic::Ordering::Relaxed) >= total {
                                break; // everything produced has been consumed
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                got
            }));
        }
        let mut all: Vec<u32> = Vec::new();
        for j in joins {
            all.extend(j.join().unwrap());
        }
        all.sort_unstable();
        let expected: Vec<u32> = (0..(PRODUCERS as u32) * PER).collect();
        assert_eq!(all, expected, "every value dequeued exactly once");
    }
}
