//! A minimal blocking client, used by the load generator, the tests,
//! and the harness. Supports pipelining: [`send`](Client::send) buffers
//! any number of request frames, [`flush`](Client::flush) pushes them
//! out, and [`recv`](Client::recv) reads responses back one at a time —
//! the server answers each connection strictly in request order, so no
//! correlation ids exist in the protocol.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{
    decode_response, encode_request, Decoded, Request, Response, UpdateOp, WireError,
};

/// A blocking connection to an [`mwllsc-server`](crate).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    outbuf: Vec<u8>,
    inbuf: Vec<u8>,
    /// Bytes of `inbuf` already consumed by decoded responses.
    in_at: usize,
}

impl Client {
    /// Connects (blocking mode, `TCP_NODELAY` — pipelining supplies the
    /// batching, Nagle would only add latency).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, outbuf: Vec::new(), inbuf: Vec::new(), in_at: 0 })
    }

    /// Buffers one request frame (nothing hits the socket until
    /// [`flush`](Client::flush)).
    pub fn send(&mut self, req: &Request) {
        encode_request(req, &mut self.outbuf);
    }

    /// Flushes buffered frames, then writes raw bytes straight to the
    /// socket — the hook the framing tests and the stress suite use to
    /// inject malformed frames at a known stream position.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.flush()?;
        self.stream.write_all(bytes)
    }

    /// Writes every buffered frame to the socket.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.stream.write_all(&self.outbuf)?;
        self.outbuf.clear();
        Ok(())
    }

    /// Reads the next response frame (blocking).
    pub fn recv(&mut self) -> std::io::Result<Response> {
        loop {
            // in_at <= inbuf.len(): only ever advanced by consumed frame lengths
            match decode_response(&self.inbuf[self.in_at..]) {
                Ok(Decoded::Frame(resp, consumed)) => {
                    self.in_at += consumed;
                    if self.in_at == self.inbuf.len() {
                        self.inbuf.clear();
                        self.in_at = 0;
                    }
                    return Ok(resp);
                }
                Ok(Decoded::NeedMore) => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "server closed mid-response",
                        ));
                    }
                    self.inbuf.extend_from_slice(&chunk[..n]); // read() returned n <= chunk.len()
                }
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("undecodable response: {e}"),
                    ));
                }
            }
        }
    }

    /// One synchronous round trip.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(req);
        self.flush()?;
        self.recv()
    }

    /// Convenience `GET`: the key's current value.
    pub fn get(&mut self, key: u64) -> std::io::Result<Result<Vec<u64>, WireError>> {
        match self.call(&Request::Get { key })? {
            Response::Value(v) => Ok(Ok(v)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(unexpected(&other)),
        }
    }

    /// Convenience `SET`.
    pub fn set(&mut self, key: u64, value: Vec<u64>) -> std::io::Result<Result<(), WireError>> {
        match self.call(&Request::Set { key, value })? {
            Response::Ok => Ok(Ok(())),
            Response::Error(e) => Ok(Err(e)),
            other => Err(unexpected(&other)),
        }
    }

    /// Convenience `UPDATE`: returns the installed value.
    pub fn update(
        &mut self,
        key: u64,
        op: UpdateOp,
    ) -> std::io::Result<Result<Vec<u64>, WireError>> {
        match self.call(&Request::Update { key, op })? {
            Response::Value(v) => Ok(Ok(v)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(unexpected(&other)),
        }
    }

    /// Convenience `MGET`: values in key order.
    pub fn mget(&mut self, keys: Vec<u64>) -> std::io::Result<Result<Vec<Vec<u64>>, WireError>> {
        match self.call(&Request::MGet { keys })? {
            Response::Values(vs) => Ok(Ok(vs)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(unexpected(&other)),
        }
    }

    /// Convenience `MSET`.
    pub fn mset(&mut self, pairs: Vec<(u64, Vec<u64>)>) -> std::io::Result<Result<(), WireError>> {
        match self.call(&Request::MSet { pairs })? {
            Response::Ok => Ok(Ok(())),
            Response::Error(e) => Ok(Err(e)),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("response kind does not match the request: {resp:?}"),
    )
}
