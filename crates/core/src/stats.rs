//! Instrumentation counters.
//!
//! The counters quantify how often each path of the algorithm runs — in
//! particular the helping machinery of §2.2–§2.3, which only activates
//! under heavy interference. They feed experiment E7 (helping mechanism
//! frequency) and are cheap enough (`Relaxed` fetch-adds) to leave on
//! unconditionally.

// The counters deliberately bypass the facade: under `--cfg mwllsc_model`
// facade atomics become scheduling points, and instrumentation must not
// perturb the model twin's step-for-step access stream (nor inflate the
// DFS state space).
// lint: facade-exempt(diagnostic counters must stay invisible to the model scheduler)
use core::sync::atomic::{AtomicU64, Ordering};

/// Live counters attached to a [`MwLlSc`](crate::MwLlSc) instance.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub ll_ops: AtomicU64,
    pub sc_attempts: AtomicU64,
    pub sc_successes: AtomicU64,
    pub vl_ops: AtomicU64,
    /// LLs that found `(0, b)` at line 4 — a helper intervened.
    pub lls_helped: AtomicU64,
    /// Helped LLs whose line-7 VL failed, i.e. the value actually returned
    /// came from the helper's donated buffer (a rescued torn read).
    pub lls_rescued: AtomicU64,
    /// Line-9 SCs that failed: help arrived between lines 8 and 9.
    pub withdraw_races: AtomicU64,
    /// Successful line-15 SCs: this process handed its buffer to a helpee.
    pub helps_given: AtomicU64,
    /// Successful line-13 SCs: lazy `Bank` fix-ups performed.
    pub bank_fixups: AtomicU64,
}

impl Counters {
    #[inline]
    pub(crate) fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> Stats {
        Stats {
            ll_ops: self.ll_ops.load(Ordering::Relaxed),
            sc_attempts: self.sc_attempts.load(Ordering::Relaxed),
            sc_successes: self.sc_successes.load(Ordering::Relaxed),
            vl_ops: self.vl_ops.load(Ordering::Relaxed),
            lls_helped: self.lls_helped.load(Ordering::Relaxed),
            lls_rescued: self.lls_rescued.load(Ordering::Relaxed),
            withdraw_races: self.withdraw_races.load(Ordering::Relaxed),
            helps_given: self.helps_given.load(Ordering::Relaxed),
            bank_fixups: self.bank_fixups.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of the instrumentation counters.
///
/// Obtained from [`MwLlSc::stats`](crate::MwLlSc::stats). Counter values
/// are monotonically non-decreasing over the object's lifetime; when read
/// while operations are in flight, individual counters are exact but the
/// snapshot as a whole is not atomic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct Stats {
    /// Completed LL operations.
    pub ll_ops: u64,
    /// SC operations invoked (successful or not).
    pub sc_attempts: u64,
    /// SC operations that succeeded (line 19 succeeded).
    pub sc_successes: u64,
    /// Completed VL operations.
    pub vl_ops: u64,
    /// LL operations that were helped (line 4 saw `(0, b)`).
    pub lls_helped: u64,
    /// Helped LLs that returned the helper's donated value (line 7 VL
    /// failed). Always ≤ `lls_helped`.
    pub lls_rescued: u64,
    /// Help-withdrawal SCs (line 9) that failed because help arrived
    /// concurrently.
    pub withdraw_races: u64,
    /// Buffers handed to helpees via successful line-15 SCs.
    pub helps_given: u64,
    /// Lazy `Bank` fix-ups performed (successful line-13 SCs).
    pub bank_fixups: u64,
}

impl Stats {
    /// Fraction of SC attempts that succeeded, in `[0, 1]`; `None` if no
    /// SCs were attempted.
    #[must_use]
    pub fn sc_success_rate(&self) -> Option<f64> {
        (self.sc_attempts > 0).then(|| self.sc_successes as f64 / self.sc_attempts as f64)
    }

    /// Fraction of LLs that needed help, in `[0, 1]`; `None` if no LLs ran.
    #[must_use]
    pub fn help_rate(&self) -> Option<f64> {
        (self.ll_ops > 0).then(|| self.lls_helped as f64 / self.ll_ops as f64)
    }

    /// Per-field difference `self - earlier`; counters are monotone so this
    /// is the activity between two snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has any counter greater than `self` (i.e. the
    /// snapshots are swapped or from different objects).
    #[must_use]
    pub fn since(&self, earlier: &Stats) -> Stats {
        let sub =
            |a: u64, b: u64| a.checked_sub(b).expect("`earlier` snapshot is newer than `self`");
        Stats {
            ll_ops: sub(self.ll_ops, earlier.ll_ops),
            sc_attempts: sub(self.sc_attempts, earlier.sc_attempts),
            sc_successes: sub(self.sc_successes, earlier.sc_successes),
            vl_ops: sub(self.vl_ops, earlier.vl_ops),
            lls_helped: sub(self.lls_helped, earlier.lls_helped),
            lls_rescued: sub(self.lls_rescued, earlier.lls_rescued),
            withdraw_races: sub(self.withdraw_races, earlier.withdraw_races),
            helps_given: sub(self.helps_given, earlier.helps_given),
            bank_fixups: sub(self.bank_fixups, earlier.bank_fixups),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let c = Counters::default();
        Counters::bump(&c.ll_ops);
        Counters::bump(&c.ll_ops);
        Counters::bump(&c.helps_given);
        let s = c.snapshot();
        assert_eq!(s.ll_ops, 2);
        assert_eq!(s.helps_given, 1);
        assert_eq!(s.sc_attempts, 0);
    }

    #[test]
    fn rates() {
        let s = Stats {
            sc_attempts: 10,
            sc_successes: 4,
            ll_ops: 8,
            lls_helped: 2,
            ..Stats::default()
        };
        assert_eq!(s.sc_success_rate(), Some(0.4));
        assert_eq!(s.help_rate(), Some(0.25));
        assert_eq!(Stats::default().sc_success_rate(), None);
        assert_eq!(Stats::default().help_rate(), None);
    }

    #[test]
    fn since_subtracts() {
        let a = Stats { ll_ops: 5, sc_attempts: 3, ..Stats::default() };
        let b = Stats { ll_ops: 9, sc_attempts: 7, sc_successes: 2, ..Stats::default() };
        let d = b.since(&a);
        assert_eq!(d.ll_ops, 4);
        assert_eq!(d.sc_attempts, 4);
        assert_eq!(d.sc_successes, 2);
    }

    #[test]
    #[should_panic(expected = "newer")]
    fn since_rejects_swapped_order() {
        let a = Stats { ll_ops: 5, ..Stats::default() };
        let b = Stats { ll_ops: 9, ..Stats::default() };
        let _ = a.since(&b);
    }
}
