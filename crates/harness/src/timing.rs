//! Wall-clock measurement helpers for the latency experiments.

use std::time::Instant;

/// Calls `f` repeatedly for roughly `min_iters` iterations (at least), and
/// returns the average nanoseconds per call.
///
/// Runs one warm-up pass of `min_iters / 10` calls first.
pub fn bench_ns(min_iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..(min_iters / 10).max(1) {
        f();
    }
    let start = Instant::now();
    for _ in 0..min_iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / min_iters as f64
}

/// Least-squares slope and intercept of `y` over `x` (simple linear fit;
/// used to verify "latency is linear in W" numerically).
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points to fit");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

/// Pearson correlation coefficient, for reporting fit quality.
pub fn correlation(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let mx: f64 = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my: f64 = points.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let vx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let vy: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (1..10).map(|x| (x as f64, 3.0 * x as f64 + 2.0)).collect();
        let (slope, intercept) = linear_fit(&pts);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 2.0).abs() < 1e-9);
        assert!((correlation(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bench_ns_returns_positive() {
        let mut x = 0u64;
        let ns = bench_ns(1000, || x = x.wrapping_add(1));
        assert!(ns >= 0.0);
        assert!(x > 0);
    }
}
