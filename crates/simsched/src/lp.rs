//! The paper's linearization-point argument (§3), executed as an online
//! monitor.
//!
//! The Wing–Gong checker ([`crate::wg`]) verifies linearizability with no
//! knowledge of the algorithm, but its search is exponential, limiting
//! history length. This monitor takes the opposite trade: it encodes the
//! paper's §3 proof — the linearization-point (LP) assignment and the
//! lemmas around it — and checks each piece *as the execution unfolds*,
//! in `O(1)` per operation. Millions-of-operations histories become
//! checkable, and a passing run certifies not just linearizability but
//! that the paper's own argument is the reason it holds:
//!
//! * **LP assignment** (§3): an LL linearizes at its line 2 (not helped),
//!   at its line 5 (helped, line-7 VL succeeded), or at the line-14 VL of
//!   the unique SC that wrote into `Help[p]` (helped, line-7 VL failed);
//!   an SC at its line 19; a VL at its line 23.
//! * **Lemmas 5, 6, 8**: the value an LL returns equals the abstract value
//!   of `O` at its LP — checked by comparing against the monitor's shadow
//!   copy of the current value captured at the LP step.
//! * **Lemma 10 / 11**: an SC (VL) succeeds iff no successful SC
//!   linearized since the LP of the process's latest LL — checked by
//!   comparing `X`-change counts.
//! * **Lemma 2** (S1–S3): during an LL's announce window exactly one write
//!   lands in `Help[p]` (the withdrawal or one donation), and none
//!   afterwards until the next announce.
//! * **Lemma 4**: an LL that was *not* helped observed at most `2N − 1`
//!   `X` changes between its line 2 and line 4.
//!
//! Any failed assertion is reported as a [`Violation::Lp`].

use crate::interp::{Pc, ProcState, StepEffect};
use crate::invariants::Violation;
use crate::state::SimState;

/// Snapshot of the abstract object at a candidate linearization point.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct LpSnapshot {
    /// The abstract value of `O` at the snapshot step.
    value: Vec<u64>,
    /// Number of successful SCs on `X` before the snapshot step.
    count: u64,
}

/// Per-process LL bookkeeping.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
struct ProcLp {
    /// Snapshot at this LL's line 2.
    l2: Option<LpSnapshot>,
    /// Snapshot at this LL's line 5 (helped path).
    l5: Option<LpSnapshot>,
    /// Whether line 4 saw `(0, b)`.
    helped: bool,
    /// Whether line 7's VL failed (the donated value will be returned).
    rescued: bool,
    /// The donation attached to this process's pending LL: the helper's
    /// line-14-VL snapshot (Lemma 8's time `t''`).
    donation: Option<LpSnapshot>,
    /// Writes into `Help[p]` observed since this process's line 1
    /// (Lemma 2's window); `None` when no LL is active.
    help_writes_in_window: Option<u32>,
    /// The LP of this process's latest *completed* LL, as an `X`-change
    /// count (for Lemma 10/11 checks on the subsequent SC/VL).
    lp_count: Option<u64>,
    /// Pending helper state: snapshot taken at line 14's VL, consumed by
    /// line 15's successful SC.
    helper_snapshot: Option<LpSnapshot>,
}

/// Online monitor executing the paper's §3 argument.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LpMonitor {
    /// Shadow of `O`'s abstract current value.
    current: Vec<u64>,
    /// Successful SCs on `X` so far.
    count: u64,
    per_proc: Vec<ProcLp>,
    /// `2N`, for Lemma 4's bound.
    num_seqs: u64,
}

impl LpMonitor {
    /// A monitor for a fresh object with the given initial value.
    pub fn new(n: usize, initial: &[u64]) -> Self {
        Self {
            current: initial.to_vec(),
            count: 0,
            per_proc: vec![ProcLp::default(); n],
            num_seqs: 2 * n as u64,
        }
    }

    /// Successful SCs observed (equals the I2 monitor's `x_changes`).
    pub fn x_changes(&self) -> u64 {
        self.count
    }

    fn snap(&self) -> LpSnapshot {
        LpSnapshot { value: self.current.clone(), count: self.count }
    }

    fn fail(detail: String) -> Violation {
        Violation::Lp { detail }
    }

    /// Feeds one interpreter step. `pc_before` is the PC that was just
    /// executed; `proc` and `state` are post-step.
    pub fn on_step(
        &mut self,
        pc_before: Pc,
        proc: &ProcState,
        state: &SimState,
        fx: &StepEffect,
    ) -> Result<(), Violation> {
        let p = proc.pid;
        let n = self.per_proc.len();

        match pc_before {
            // Line 1: announce — opens the Lemma 2 window, resets LL state.
            Pc::L1 => {
                let entry = &mut self.per_proc[p];
                entry.l2 = None;
                entry.l5 = None;
                entry.helped = false;
                entry.rescued = false;
                entry.donation = None;
                entry.help_writes_in_window = Some(0);
            }
            // Line 2: candidate LP for the un-helped case.
            Pc::L2 => {
                self.per_proc[p].l2 = Some(self.snap());
            }
            // Ablation retry-loop LL: each R2 (re-)establishes the LP
            // candidate; R7's successful VL certifies it (no announce, so
            // no Lemma 2 window and no donations to track).
            Pc::R2 => {
                let snap = self.snap();
                let entry = &mut self.per_proc[p];
                entry.l2 = Some(snap);
                entry.helped = false;
                entry.rescued = false;
                entry.donation = None;
            }
            Pc::R7 if fx.response.is_some() => {
                self.check_ll_response(p, proc)?;
            }
            // Line 4: helped detection + Lemma 4 check when not helped.
            Pc::L4 => {
                if fx.ll_helped {
                    self.per_proc[p].helped = true;
                } else {
                    let l2 = self.per_proc[p].l2.as_ref().expect("line 4 implies line 2 executed");
                    let changes = self.count - l2.count;
                    if changes > self.num_seqs - 1 {
                        return Err(Self::fail(format!(
                            "Lemma 4: p{p} not helped, but X changed {changes} times \
                             (> 2N-1 = {}) between its lines 2 and 4",
                            self.num_seqs - 1
                        )));
                    }
                }
            }
            // Line 5: candidate LP for the helped, VL-ok case.
            Pc::L5 => {
                self.per_proc[p].l5 = Some(self.snap());
            }
            // Line 7: rescue detection.
            Pc::L7 if fx.ll_rescued => {
                self.per_proc[p].rescued = true;
            }
            // Line 9: a successful withdrawal is a Help[p] write (Lemma 2).
            Pc::L9 if fx.help_withdraw => {
                self.note_help_write(p, "own line-9 withdrawal")?;
            }
            // Line 10: the Lemma 2 window (t, t') closes here: exactly one
            // write must have landed.
            Pc::L10 => {
                let writes = self.per_proc[p]
                    .help_writes_in_window
                    .expect("line 10 implies an open announce window");
                if writes != 1 {
                    return Err(Self::fail(format!(
                        "Lemma 2 (S1): {writes} writes into Help[{p}] during its \
                         announce window, expected exactly 1"
                    )));
                }
            }
            // Line 11 (last word): the LL responds — Lemmas 5/6/8.
            Pc::L11(i) if i + 1 == state.w => {
                self.check_ll_response(p, proc)?;
            }
            // Line 14's VL (paper time t''): snapshot for a possible donation.
            Pc::L14Vl => {
                if proc.pc == Pc::L15 {
                    // VL succeeded: the helper's retval is O's current value
                    // (its link is intact), i.e. the value at this very step.
                    self.per_proc[p].helper_snapshot = Some(self.snap());
                } else {
                    self.per_proc[p].helper_snapshot = None;
                }
            }
            // Line 15: successful donation — attach the snapshot to the
            // helpee's pending LL (and count the Help write, Lemma 2).
            Pc::L15 if fx.help_given => {
                let q = (proc.x.seq as usize) % n;
                let snap = self.per_proc[p]
                    .helper_snapshot
                    .take()
                    .expect("line 15 success implies a line-14 VL snapshot");
                self.note_help_write(q, "a line-15 donation")?;
                if self.per_proc[q].donation.is_some() {
                    return Err(Self::fail(format!(
                        "Lemma 2: second donation to p{q} within one LL window"
                    )));
                }
                self.per_proc[q].donation = Some(snap);
            }
            // Line 19: the SC's LP — Lemma 10; maintain the shadow value on
            // success. (The success response is emitted at line 20, but the
            // outcome is decided — and checked — here.)
            Pc::L19 => {
                if let Some(crate::history::RespDesc::Sc(false)) = fx.response {
                    self.check_sc_outcome(p, false)?;
                }
                if let Some(new_x) = fx.x_write {
                    // Success: check BEFORE bumping the count, so the rule
                    // "succeeds iff count == lp_count" reads naturally.
                    self.check_sc_outcome(p, true)?;
                    self.count += 1;
                    self.current = state.bufs[new_x.buf as usize].clone();
                }
            }
            // Line 23: VL responds — Lemma 11.
            Pc::L23 => {
                if let Some(crate::history::RespDesc::Vl(ok)) = fx.response {
                    let lp = self.per_proc[p].lp_count.expect("VL requires a completed LL");
                    let expect = self.count == lp;
                    if ok != expect {
                        return Err(Self::fail(format!(
                            "Lemma 11: p{p} VL returned {ok}, but {} successful SCs \
                             occurred since its LL's LP",
                            self.count - lp
                        )));
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Records a write into `Help[q]` and enforces Lemma 2's S1/S3.
    fn note_help_write(&mut self, q: usize, what: &str) -> Result<(), Violation> {
        match &mut self.per_proc[q].help_writes_in_window {
            Some(w) => {
                *w += 1;
                if *w > 1 {
                    return Err(Self::fail(format!(
                        "Lemma 2 (S1): second write into Help[{q}] ({what}) within \
                         one announce window"
                    )));
                }
                Ok(())
            }
            // S3: a write while no announce window is open.
            None => Err(Self::fail(format!(
                "Lemma 2 (S3): write into Help[{q}] ({what}) outside any announce window"
            ))),
        }
    }

    /// Lemmas 5/6/8: the LL's return value equals `O`'s abstract value at
    /// its LP; records the LP count for the subsequent SC/VL check.
    fn check_ll_response(&mut self, p: usize, proc: &ProcState) -> Result<(), Violation> {
        let entry = &mut self.per_proc[p];
        let (lp, which): (LpSnapshot, &str) = if !entry.helped {
            (entry.l2.clone().expect("LL executed line 2"), "line 2 (Lemma 5)")
        } else if !entry.rescued {
            (entry.l5.clone().expect("helped LL executed line 5"), "line 5 (Lemma 6)")
        } else {
            let donation = entry.donation.clone().ok_or_else(|| {
                Self::fail(format!(
                    "Lemma 7: p{p} took the rescue path but no donation was recorded"
                ))
            })?;
            (donation, "the helper's line-14 VL (Lemma 8)")
        };
        if proc.retval != lp.value {
            return Err(Self::fail(format!(
                "p{p}'s LL returned {:?}, but O's value at its LP ({which}) was {:?}",
                proc.retval, lp.value
            )));
        }
        entry.lp_count = Some(lp.count);
        entry.help_writes_in_window = None; // close the Lemma 2 window
        entry.donation = None;
        Ok(())
    }

    /// Lemma 10: the SC succeeds iff no successful SC since the LL's LP.
    fn check_sc_outcome(&mut self, p: usize, succeeded: bool) -> Result<(), Violation> {
        let lp = self.per_proc[p].lp_count.expect("SC requires a completed LL");
        let expect = self.count == lp;
        if succeeded != expect {
            return Err(Self::fail(format!(
                "Lemma 10: p{p}'s SC {} although {} successful SCs occurred since \
                 its LL's LP",
                if succeeded { "succeeded" } else { "failed" },
                self.count - lp
            )));
        }
        if succeeded {
            // The success consumes the link: any further SC/VL against this
            // LL must see count > lp. (count is bumped by the caller.)
            debug_assert_eq!(self.count, lp);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{step, ProcState, SimOp};

    /// Drives a full solo operation through the monitor.
    fn drive(
        state: &mut SimState,
        proc: &mut ProcState,
        mon: &mut LpMonitor,
        op: &SimOp,
    ) -> Result<(), Violation> {
        let _ = proc.begin(op);
        loop {
            let pc_before = proc.pc;
            let fx = step(state, proc);
            mon.on_step(pc_before, proc, state, &fx)?;
            if fx.response.is_some() {
                return Ok(());
            }
        }
    }

    #[test]
    fn solo_run_satisfies_lp_argument() {
        let mut state = SimState::new(2, 2, &[3, 4]);
        let mut proc = ProcState::new(0, 2, 2);
        let mut mon = LpMonitor::new(2, &[3, 4]);
        for i in 0..50u64 {
            drive(&mut state, &mut proc, &mut mon, &SimOp::Ll).unwrap();
            drive(&mut state, &mut proc, &mut mon, &SimOp::Vl).unwrap();
            drive(&mut state, &mut proc, &mut mon, &SimOp::Sc(vec![i, i + 1])).unwrap();
        }
        assert_eq!(mon.x_changes(), 50);
    }

    #[test]
    fn two_procs_interleaved_coarse() {
        // Operation-level interleaving (each op runs to completion): the
        // loser's SC failure must match Lemma 10.
        let mut state = SimState::new(2, 1, &[0]);
        let mut p0 = ProcState::new(0, 2, 1);
        let mut p1 = ProcState::new(1, 2, 1);
        let mut mon = LpMonitor::new(2, &[0]);
        drive(&mut state, &mut p0, &mut mon, &SimOp::Ll).unwrap();
        drive(&mut state, &mut p1, &mut mon, &SimOp::Ll).unwrap();
        drive(&mut state, &mut p1, &mut mon, &SimOp::Sc(vec![7])).unwrap();
        drive(&mut state, &mut p0, &mut mon, &SimOp::Sc(vec![9])).unwrap(); // must fail, and does
        drive(&mut state, &mut p0, &mut mon, &SimOp::Ll).unwrap();
        assert_eq!(p0.retval, vec![7]);
    }

    #[test]
    fn detects_planted_wrong_return_value() {
        let mut state = SimState::new(1, 1, &[5]);
        let mut proc = ProcState::new(0, 1, 1);
        let mut mon = LpMonitor::new(1, &[5]);
        let _ = proc.begin(&SimOp::Ll);
        let mut err = None;
        loop {
            let pc_before = proc.pc;
            // Corrupt the retval just before the final line-11 store.
            if matches!(pc_before, crate::interp::Pc::L11(0)) {
                proc.retval[0] = 999;
            }
            let fx = step(&mut state, &mut proc);
            if let Err(e) = mon.on_step(pc_before, &proc, &state, &fx) {
                err = Some(e);
                break;
            }
            if fx.response.is_some() {
                break;
            }
        }
        let err = err.expect("monitor must flag the corrupted return value");
        assert!(matches!(err, Violation::Lp { .. }), "{err}");
    }
}
