//! `mwllsc-store` — a sharded register store serving **millions of logical
//! `W`-word LL/SC variables** over pools of the paper's wait-free
//! [`MwLlSc`](mwllsc::MwLlSc) objects.
//!
//! # Why a store
//!
//! One `MwLlSc` object is a *single* `W`-word variable shared by up to
//! `N ≤ 2^22` processes ([`Layout::MAX_PROCESSES`](mwllsc::layout::Layout)
//! — the tagged substrate's 16-tag-bit floor), and all `N` processes
//! contend on one `X`/`Help`/`Bank` region. Neither property matches a
//! service that must hold millions of independent variables for millions
//! of users. The paper's `O(NW)` space bound is what makes the fix
//! affordable: because *per-object* cost is linear in the processes that
//! touch it, the classic sharding move — many small, cache-friendly
//! objects behind a deterministic router, each shared by a handful of
//! processes — costs `keys × O(cW)` instead of the `keys × O(c²W)` an
//! Anderson–Moir-style object would multiply out to.
//!
//! # Architecture
//!
//! ```text
//! key ──fnv──► shard s ──► lazy table ──► per-key B::Object (c slots, W words)
//!                 │                        B: MwFactory = PaperBackend
//!                 └─ SlotRegistry(c): one process id per StoreHandle
//! ```
//!
//! * [`Store`] owns `S` cache-line-padded shards. A shard holds a
//!   [`SlotRegistry`](mwllsc::SlotRegistry) of `c = shard_capacity`
//!   process slots and a lazily-populated table of per-key objects — a
//!   16M-key store allocates **nothing** per key until the key is first
//!   touched (per-key cost is `3cW + 3c + 1` words once materialized on
//!   the default backend).
//! * The store is **generic over its backend**: the type parameter
//!   `B: `[`MwFactory`] decides what a shard's key table materializes.
//!   [`PaperBackend`] (the default — `Store::new` is unchanged) builds
//!   paper objects on the tagged substrate;
//!   `Store::<EpochBackend>::new_in(...)` runs the same router and lease
//!   discipline over the epoch pointer-swap substrate; the baseline
//!   markers in `llsc-baselines` (lock, seqlock, pointer-swap, AM-style)
//!   open the 2^24-key workload to every implementation in the suite,
//!   and `llsc_baselines::try_build_store(algo, config)` selects one at
//!   runtime behind [`DynStore`].
//! * [`Router`] maps keys to shards with an FNV-1a hash — deterministic,
//!   dependency-free, balanced (the router property tests assert ≤ 2× of
//!   ideal across 64 shards).
//! * Batched paths amortize the store layer:
//!   [`read_many`](StoreHandle::read_many) and the write-side
//!   [`update_many`](StoreHandle::update_many) /
//!   [`write_many`](StoreHandle::write_many) process a batch in
//!   `(shard, key)` order — router validation and every needed shard
//!   lease happen up front (all-or-nothing before the first
//!   read/write), the table lock and per-shard counters are paid once
//!   per shard run instead of once per key, and a run of equal keys is
//!   folded into **one LL/SC commit**: several logical updates per SC.
//! * [`StoreHandle`] leases **one slot per touched shard**, on demand, and
//!   holds it for its lifetime (the same lease discipline as
//!   [`MwLlSc::attach`](mwllsc::MwLlSc::attach)). Holding shard slot `p`
//!   exclusively means `claim(p)` on *any* object in that shard can never
//!   conflict, so every per-key operation acquires its object handle with
//!   one uncontended RMW.
//! * [`Store::space`] / [`Store::stats`] roll every materialized object's
//!   [`SpaceReport`](mwllsc::SpaceReport) (including the substrate's
//!   retired-words backlog) into one honest [`StoreSpace`] /
//!   [`StoreStats`] report.
//!
//! # Progress guarantees, honestly
//!
//! Per-key [`read`](StoreHandle::read) performs one wait-free `O(W)` LL on
//! the key's object; [`update`](StoreHandle::update) is the standard
//! LL/SC retry loop — every LL and SC inside it is wait-free, the loop
//! itself is lock-free under per-key contention (like any LL/SC loop).
//! One engineering caveat: the *first* touch of a key takes the owning
//! shard's table lock to materialize the object (subsequent touches take a
//! read lock). The lock is sharded `S` ways and never held across an
//! LL/SC operation.
//!
//! # Quickstart
//!
//! ```
//! use mwllsc_store::{Store, StoreConfig};
//!
//! // 2^24 logical 2-word variables over 8 shards, ≤ 4 concurrent
//! // handles per shard — far beyond one object's 2^22 process ceiling.
//! let store = Store::try_new(StoreConfig::new(8, 4, 2, 1 << 24)).unwrap();
//! let mut h = store.attach();
//!
//! h.update(7, |v| v[0] += 1).unwrap();
//! h.update((1 << 24) - 1, |v| v[1] = 9).unwrap();
//! assert_eq!(h.read_vec(7).unwrap(), vec![1, 0]);
//!
//! let space = store.space();
//! assert_eq!(space.touched_keys, 2, "only touched keys are materialized");
//! assert_eq!(space.shared_words, 2 * space.per_key_shared_words);
//! ```

#![warn(missing_docs, missing_debug_implementations)]
#![forbid(unsafe_code)]

mod dynstore;
mod handle;
mod router;
mod store;
mod tls;

pub use dynstore::{DynStore, DynStoreHandle};
pub use handle::StoreHandle;
pub use router::{fnv1a, Router};
pub use store::{Store, StoreConfig, StoreError, StoreSpace, StoreStats};
pub use tls::detach_current_thread;

// The backend vocabulary, re-exported so store consumers need not import
// from the core crate: the default paper backend plus the substrate
// ablations. Baseline backends (lock, seqlock, pointer-swap, AM-style)
// live in `llsc-baselines` together with `try_build_store`.
pub use mwllsc::{EpochBackend, MwFactory, PaperBackend, PaperRetryBackend};
