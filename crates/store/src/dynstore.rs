//! Type-erased store access: [`DynStore`] / [`DynStoreHandle`].
//!
//! [`Store`] is generic over its backend, which is the right shape for
//! code that knows its implementation at compile time — but the harness
//! CLI (and any configuration-driven service) picks the backend at
//! *runtime*. These object-safe traits erase `B`: every
//! `Arc<Store<B>>` is a `DynStore`, every `StoreHandle<B>` is a
//! `DynStoreHandle`, and `llsc_baselines::try_build_store` maps an
//! `Algo` name to a boxed `DynStore` of the matching backend.
//!
//! The erased surface trades monomorphized closures for `&mut dyn FnMut`
//! (one indirect call per LL/SC round — noise next to the operation
//! itself) and is deliberately a subset: typed construction and the
//! allocation-free generic paths stay on [`Store`]/[`StoreHandle`].

use std::sync::Arc;

use mwllsc::{MwFactory, Progress};

use crate::handle::StoreHandle;
use crate::store::{Store, StoreError, StoreSpace, StoreStats};

/// Object-safe view of a [`StoreHandle`], for stores selected at runtime.
pub trait DynStoreHandle: Send {
    /// Words per logical variable, `W`.
    fn width(&self) -> usize;

    /// Reads the current value of `key` into `out`
    /// ([`StoreHandle::read`]).
    fn read(&mut self, key: u64, out: &mut [u64]) -> Result<(), StoreError>;

    /// Reads many keys, returning values in the order of `keys`
    /// ([`StoreHandle::read_many`]).
    fn read_many(&mut self, keys: &[u64]) -> Result<Vec<Vec<u64>>, StoreError>;

    /// Reads many keys into one flat `keys.len() × W` buffer
    /// ([`StoreHandle::read_many_into`]).
    fn read_many_into(&mut self, keys: &[u64], out: &mut [u64]) -> Result<(), StoreError>;

    /// Atomically read-modify-writes `key` with `f`, using `out` as the
    /// working buffer ([`StoreHandle::update_with`]).
    fn update_with_dyn(
        &mut self,
        key: u64,
        out: &mut [u64],
        f: &mut dyn FnMut(&mut [u64]),
    ) -> Result<(), StoreError>;

    /// Batched read-modify-write: commits `apply(i, buf)` once per key in
    /// `(shard, key)` order with the [`StoreHandle::update_many`]
    /// batching economics. `apply` receives the entry's index in `keys`.
    fn update_many_dyn(
        &mut self,
        keys: &[u64],
        apply: &mut dyn FnMut(usize, &mut [u64]),
    ) -> Result<(), StoreError>;

    /// Blind-writes `(key, value)` pairs ([`StoreHandle::write_many`]).
    fn write_many(&mut self, batch: &[(u64, &[u64])]) -> Result<(), StoreError>;

    /// Reads `key` into a fresh `Vec`.
    fn read_vec(&mut self, key: u64) -> Result<Vec<u64>, StoreError> {
        let mut out = vec![0u64; self.width()];
        self.read(key, &mut out)?;
        Ok(out)
    }
}

impl<B: MwFactory> DynStoreHandle for StoreHandle<B> {
    fn width(&self) -> usize {
        self.store().width()
    }

    fn read(&mut self, key: u64, out: &mut [u64]) -> Result<(), StoreError> {
        StoreHandle::read(self, key, out)
    }

    fn read_many(&mut self, keys: &[u64]) -> Result<Vec<Vec<u64>>, StoreError> {
        StoreHandle::read_many(self, keys)
    }

    fn read_many_into(&mut self, keys: &[u64], out: &mut [u64]) -> Result<(), StoreError> {
        StoreHandle::read_many_into(self, keys, out)
    }

    fn update_with_dyn(
        &mut self,
        key: u64,
        out: &mut [u64],
        f: &mut dyn FnMut(&mut [u64]),
    ) -> Result<(), StoreError> {
        self.update_with(key, out, f)
    }

    fn update_many_dyn(
        &mut self,
        keys: &[u64],
        apply: &mut dyn FnMut(usize, &mut [u64]),
    ) -> Result<(), StoreError> {
        self.batch_update(keys, apply)
    }

    fn write_many(&mut self, batch: &[(u64, &[u64])]) -> Result<(), StoreError> {
        StoreHandle::write_many(self, batch)
    }
}

/// Object-safe view of an owned [`Store`], for runtime backend selection.
///
/// Implemented for `Arc<Store<B>>` (attachment needs the `Arc`), so a
/// `Box<dyn DynStore>` is a boxed `Arc` — cloning cost is one refcount.
///
/// # Examples
///
/// ```
/// use mwllsc_store::{DynStore, Store, StoreConfig};
///
/// let store: Box<dyn DynStore> = Box::new(Store::new(StoreConfig::new(4, 2, 1, 1 << 20)));
/// let mut h = store.attach_dyn();
/// let mut buf = [0u64; 1];
/// h.update_with_dyn(9, &mut buf, &mut |v| v[0] += 41).unwrap();
/// assert_eq!(h.read_vec(9).unwrap(), vec![41]);
/// assert_eq!(store.backend(), "paper");
/// ```
pub trait DynStore: Send + Sync {
    /// Attaches a type-erased handle ([`Store::attach`]).
    fn attach_dyn(&self) -> Box<dyn DynStoreHandle>;

    /// The backend's display name ([`Store::backend`]).
    fn backend(&self) -> &'static str;

    /// The backend's per-object progress guarantee
    /// ([`MwFactory::progress`]).
    fn progress(&self) -> Progress;

    /// Number of shards `S`.
    fn shards(&self) -> usize;

    /// Process slots per shard, `c`.
    fn shard_capacity(&self) -> usize;

    /// Words per logical variable, `W`.
    fn width(&self) -> usize;

    /// Size of the logical key space.
    fn key_capacity(&self) -> u64;

    /// Shard slots currently leased by live handles.
    fn live_slot_leases(&self) -> usize;

    /// The space rollup ([`Store::space`]).
    fn space(&self) -> StoreSpace;

    /// The stats rollup ([`Store::stats`]).
    fn stats(&self) -> StoreStats;
}

impl std::fmt::Debug for dyn DynStore + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynStore")
            .field("backend", &self.backend())
            .field("shards", &self.shards())
            .field("shard_capacity", &self.shard_capacity())
            .field("w", &self.width())
            .field("keys", &self.key_capacity())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for dyn DynStoreHandle + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynStoreHandle").field("w", &self.width()).finish_non_exhaustive()
    }
}

impl<B: MwFactory> DynStore for Arc<Store<B>> {
    fn attach_dyn(&self) -> Box<dyn DynStoreHandle> {
        Box::new(self.attach())
    }

    fn backend(&self) -> &'static str {
        Store::backend(self)
    }

    fn progress(&self) -> Progress {
        B::progress()
    }

    fn shards(&self) -> usize {
        Store::shards(self)
    }

    fn shard_capacity(&self) -> usize {
        Store::shard_capacity(self)
    }

    fn width(&self) -> usize {
        Store::width(self)
    }

    fn key_capacity(&self) -> u64 {
        Store::key_capacity(self)
    }

    fn live_slot_leases(&self) -> usize {
        Store::live_slot_leases(self)
    }

    fn space(&self) -> StoreSpace {
        Store::space(self)
    }

    fn stats(&self) -> StoreStats {
        Store::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use mwllsc::EpochBackend;

    #[test]
    fn erased_store_serves_every_operation() {
        let store: Box<dyn DynStore> =
            Box::new(Store::<EpochBackend>::new_in(StoreConfig::new(4, 2, 2, 1 << 16)));
        assert_eq!(store.backend(), "paper-epoch");
        assert_eq!(store.width(), 2);

        let mut h = store.attach_dyn();
        let mut buf = [0u64; 2];
        h.update_with_dyn(5, &mut buf, &mut |v| v[0] = 7).unwrap();
        h.write_many(&[(6, [8, 9].as_slice())]).unwrap();
        h.update_many_dyn(&[5, 6], &mut |i, v| v[1] += i as u64 + 1).unwrap();
        assert_eq!(h.read_vec(5).unwrap(), vec![7, 1]);
        assert_eq!(h.read_many(&[6]).unwrap(), vec![vec![8, 11]]);
        let mut flat = [0u64; 4];
        h.read_many_into(&[5, 6], &mut flat).unwrap();
        assert_eq!(flat, [7, 1, 8, 11]);

        let space = store.space();
        assert_eq!(space.touched_keys, 2);
        assert_eq!(space.shared_words, 2 * space.per_key_shared_words);
        drop(h);
        assert_eq!(store.live_slot_leases(), 0);
    }
}
