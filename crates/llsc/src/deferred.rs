//! A shared helper for pointer-swap cells with epoch-based reclamation.
//!
//! Both [`EpochLlSc`](crate::EpochLlSc) and the `llsc-baselines`
//! pointer-swap comparator need the same primitive: an atomic pointer to
//! an immutable heap node tagged with a monotone sequence number, where
//! a successful swap retires the old node. Retired nodes are handed to
//! the hand-rolled epoch-based reclamation subsystem in [`crate::smr`]
//! and freed as soon as every reader that could still observe them has
//! finished — so the memory high-water mark under sustained swap traffic
//! is `O(threads × bag size)`, independent of the total number of
//! successful swaps. (Earlier revisions deferred all reclamation to the
//! cell's `Drop`, which grew memory linearly with swap count; that
//! design is gone.)
//!
//! Reads are guard-scoped: [`load`](DeferredSwapCell::load) pins the
//! current epoch and returns a [`Pinned`] that derefs to the payload;
//! the node it points at cannot be freed until the `Pinned` is dropped.
//!
//! Keeping the `unsafe` here — in one place, next to `smr` — is the
//! point: the two consumers contain no unsafe code of their own.

use core::marker::PhantomData;
use core::ops::Deref;
use std::sync::Arc;

use crate::smr;
use crate::sync::{AtomicPtr, AtomicUsize, Ordering};

struct Node<T> {
    payload: T,
    seq: u64,
    /// The owning cell's live+retired node counter; decremented when the
    /// node is finally dropped (possibly long after the cell itself).
    tracker: Arc<AtomicUsize>,
}

impl<T> Node<T> {
    fn boxed(payload: T, seq: u64, tracker: &Arc<AtomicUsize>) -> *mut Node<T> {
        tracker.fetch_add(1, Ordering::Relaxed); // lint: cell=TRACK
        Box::into_raw(Box::new(Node { payload, seq, tracker: Arc::clone(tracker) }))
    }
}

impl<T> Drop for Node<T> {
    fn drop(&mut self) {
        self.tracker.fetch_sub(1, Ordering::Relaxed); // lint: cell=TRACK
    }
}

/// An atomic pointer to an immutable `(payload, seq)` node, with
/// compare-and-swap keyed on the sequence number and epoch-based
/// reclamation of replaced nodes (see the module docs).
///
/// `seq` starts at 0 and increments on every successful
/// [`compare_swap`](Self::compare_swap), so it is unique over the cell's
/// lifetime: comparing sequence numbers can never suffer pointer-ABA.
pub struct DeferredSwapCell<T> {
    /// The current node. Never null after construction.
    ptr: AtomicPtr<Node<T>>,
    /// Live + retired-but-unreclaimed nodes allocated by this cell
    /// (including the current one). Shared with every node so late frees
    /// settle the count even after the cell is gone.
    nodes: Arc<AtomicUsize>,
}

// SAFETY: published nodes are immutable; unlinked nodes are freed only
// by the epoch subsystem once no pinned reader can reach them. Payload
// references (`Pinned`) are handed to other threads, hence `T: Send +
// Sync`; `'static` because a retired payload may outlive the cell's
// borrows inside the limbo bags.
unsafe impl<T: Send + Sync + 'static> Send for DeferredSwapCell<T> {}
unsafe impl<T: Send + Sync + 'static> Sync for DeferredSwapCell<T> {}

impl<T: Send + Sync + 'static> std::fmt::Debug for DeferredSwapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeferredSwapCell").field("seq", &self.load().seq()).finish()
    }
}

/// A guard-scoped view of a cell's current `(payload, seq)` node.
///
/// Holds an epoch pin ([`smr::Guard`]) for as long as it lives: the node
/// it points at — even one unlinked by a concurrent
/// [`compare_swap`](DeferredSwapCell::compare_swap) the instant after
/// the load — stays allocated until this value is dropped. Dropping it
/// promptly is what keeps the garbage backlog at its bound; `Pinned` is
/// deliberately `!Send` (the pin lives in the loading thread's epoch
/// record).
pub struct Pinned<'c, T> {
    /// Field order matters for drop order only in that neither drop
    /// touches the other; the guard must simply outlive every deref,
    /// which the borrow rules of `Deref` already enforce.
    _guard: smr::Guard,
    node: *const Node<T>,
    _cell: PhantomData<&'c DeferredSwapCell<T>>,
}

impl<T> Pinned<'_, T> {
    /// The node's sequence number (unique over the cell's lifetime).
    #[must_use]
    pub fn seq(&self) -> u64 {
        // SAFETY: `node` was the cell's current node when `_guard` was
        // already pinned, so it cannot be freed while `self` lives.
        unsafe { (*self.node).seq }
    }

    /// The payload (also available through `Deref`).
    #[must_use]
    pub fn value(&self) -> &T {
        // SAFETY: as in `seq`.
        unsafe { &(*self.node).payload }
    }
}

impl<T> Deref for Pinned<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Pinned<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pinned").field("seq", &self.seq()).field("value", self.value()).finish()
    }
}

impl<T: Send + Sync + 'static> DeferredSwapCell<T> {
    /// Creates a cell holding `init` at sequence number 0.
    #[must_use]
    pub fn new(init: T) -> Self {
        let nodes = Arc::new(AtomicUsize::new(0));
        Self { ptr: AtomicPtr::new(Node::boxed(init, 0, &nodes)), nodes }
    }

    /// The current payload and its sequence number, valid for as long as
    /// the returned [`Pinned`] lives.
    pub fn load(&self) -> Pinned<'_, T> {
        let guard = smr::pin();
        // Acquire: synchronizes with the Release publication in
        // `compare_swap`, making the node's payload (written before the
        // publishing CAS) visible through the returned reference. The
        // *liveness* of the node is the guard's job, not the ordering's:
        // pinning happened above, so whatever this load observes cannot
        // be reclaimed until `guard` drops.
        let node = self.ptr.load(Ordering::Acquire); // lint: cell=PTR
        Pinned { _guard: guard, node, _cell: PhantomData }
    }

    /// Installs `payload` at `expect_seq + 1` iff the current node's
    /// sequence number equals `expect_seq`; returns whether it did.
    pub fn compare_swap(&self, expect_seq: u64, payload: T) -> bool {
        // Pinned pre-check: a stale seq — every lost race and every
        // retry of a caller's read-modify-write loop — fails without
        // paying for an allocation.
        {
            let _guard = smr::pin();
            // Acquire: see `load` — we dereference `cur`.
            let cur = self.ptr.load(Ordering::Acquire); // lint: cell=PTR
                                                        // SAFETY: `cur` was the current node while `_guard` was
                                                        // pinned, so it stays allocated until the pin drops.
            if unsafe { &*cur }.seq != expect_seq {
                return false;
            }
        }
        // Allocate *outside* the pin: the candidate's seq depends only on
        // `expect_seq`, and keeping each pinned window down to
        // load–check–CAS minimizes the damage a preemption mid-window
        // does to epoch advancing (a descheduled pinned thread blocks
        // reclamation for its whole quantum).
        let next = Node::boxed(payload, expect_seq + 1, &self.nodes);
        let won = {
            let guard = smr::pin();
            // Acquire: see `load` — we dereference `cur` below.
            let cur = self.ptr.load(Ordering::Acquire); // lint: cell=PTR
                                                        // SAFETY: `cur` was the current node while `guard` was
                                                        // pinned, so it stays allocated at least until `guard` drops.
            if unsafe { &*cur }.seq != expect_seq {
                false
            } else {
                // Success = Release: publishes `next`'s payload/seq
                // (written above, before the CAS) to the Acquire loads in
                // `load` / `compare_swap`. No Acquire needed on success —
                // `cur` was already read through an Acquire load, and the
                // retire below needs only program order plus the epoch
                // fences inside `smr`. Failure = Relaxed: the observed
                // value is discarded (we return `false` without touching
                // it).
                // lint: cell=PTR
                match self.ptr.compare_exchange(cur, next, Ordering::Release, Ordering::Relaxed) {
                    Ok(_) => {
                        // SAFETY: our CAS unlinked `cur` — no shared
                        // location leads to it anymore, we are the
                        // exclusive retirer, and `guard` is the pin
                        // `retire` requires.
                        unsafe { smr::retire(&guard, cur) };
                        true
                    }
                    Err(_) => false,
                }
            }
            // `guard` drops here: the decongestion below must run
            // unpinned (a pinned yielder would itself block advancing).
        };
        if won {
            smr::decongest();
        } else {
            // SAFETY: `next` was never published; we still own it
            // exclusively.
            drop(unsafe { Box::from_raw(next) });
        }
        won
    }

    /// Nodes currently allocated by this cell: the live one plus any
    /// retired ones the epoch subsystem has not yet reclaimed. The
    /// reclamation stress suite asserts this stays `O(threads ×
    /// bag size)` under sustained swap traffic; it is also what makes
    /// the substrates' `space()` reporting honest.
    #[must_use]
    pub fn tracked_nodes(&self) -> usize {
        self.nodes.load(Ordering::Relaxed) // lint: cell=CTR
    }

    /// 64-bit words occupied by one heap node (header + inline payload;
    /// heap data *owned* by the payload, e.g. a `Vec`'s buffer, is the
    /// caller's to add). Used for space accounting.
    #[must_use]
    pub fn node_words() -> usize {
        std::mem::size_of::<Node<T>>().div_ceil(8)
    }
}

impl<T> Drop for DeferredSwapCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no `Pinned` borrows this cell anymore and no other
        // thread can reach it, so the *current* node is exclusively ours.
        // Already-retired nodes are the epoch subsystem's problem and are
        // freed by it — their `tracker` Arc keeps the counter alive.
        let cur = *self.ptr.get_mut();
        if !cur.is_null() {
            // SAFETY: exclusive access; the current node was never
            // retired (a node is retired only after being unlinked).
            drop(unsafe { Box::from_raw(cur) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Iteration budget: full size natively, floored under Miri — the
    /// interpreter runs these storms ~100x slower, and the assertions are
    /// count-parametric, so a smaller budget exercises the same paths.
    fn scaled(n: u64) -> u64 {
        if cfg!(miri) {
            (n / 50).max(8)
        } else {
            n
        }
    }

    #[test]
    fn load_and_swap_sequence() {
        let c = DeferredSwapCell::new(10u64);
        let p = c.load();
        assert_eq!((*p, p.seq()), (10, 0));
        drop(p);
        assert!(c.compare_swap(0, 11));
        let p = c.load();
        assert_eq!((*p, p.seq()), (11, 1));
        drop(p);
        assert!(!c.compare_swap(0, 99), "stale seq must fail");
        assert_eq!(*c.load(), 11);
    }

    #[test]
    fn failed_swap_frees_candidate() {
        // A failing compare_swap must not leak its candidate node: the
        // cell's node counter ends where it started.
        let c = DeferredSwapCell::new(vec![1u64, 2]);
        for _ in 0..scaled(1000) {
            assert!(!c.compare_swap(77, vec![9, 9]));
        }
        assert_eq!(c.tracked_nodes(), 1, "only the live node remains tracked");
    }

    #[test]
    fn pinned_survives_concurrent_swap() {
        let _gate = crate::testgate();
        let c = Arc::new(DeferredSwapCell::new(vec![7u64; 32]));
        let held = c.load();
        let c2 = Arc::clone(&c);
        std::thread::spawn(move || {
            for i in 0..scaled(500) {
                let seq = c2.load().seq();
                c2.compare_swap(seq, vec![i; 32]);
            }
        })
        .join()
        .unwrap();
        // The node we pinned was retired hundreds of swaps ago; the pin
        // must have kept it whole.
        assert_eq!(held.seq(), 0);
        assert!(held.iter().all(|&x| x == 7), "pinned payload mutated or freed");
    }

    #[test]
    fn concurrent_swaps_every_seq_won_once() {
        let per_thread = scaled(2_000);
        let c = Arc::new(DeferredSwapCell::new(0u64));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            joins.push(std::thread::spawn(move || {
                let mut wins = 0u64;
                while wins < per_thread {
                    let p = c.load();
                    let (v, seq) = (*p, p.seq());
                    drop(p);
                    if c.compare_swap(seq, v + 1) {
                        wins += 1;
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let p = c.load();
        assert_eq!((*p, p.seq()), (4 * per_thread, 4 * per_thread));
    }

    #[test]
    fn sustained_swaps_do_not_grow_tracked_nodes() {
        // The whole point of the EBR rewrite: many successful swaps, yet
        // the cell never accumulates more than a bounded backlog.
        let _gate = crate::testgate();
        let c = DeferredSwapCell::new(0u64);
        let mut high_water = 0;
        for i in 0..scaled(10_000) {
            assert!(c.compare_swap(i, i + 1));
            high_water = high_water.max(c.tracked_nodes());
        }
        // Single-threaded bound: one live node + at most one epoch's
        // worth of unflushed garbage per collection interval, plus slack
        // for garbage pinned by sibling tests in this binary.
        assert!(
            high_water <= 16 * smr::ADVANCE_EVERY as usize,
            "backlog grew unbounded: high water {high_water}"
        );
        drop(c);
    }
}
