//! The accept loop: a non-blocking listener feeding workers round-robin.
//!
//! Deliberately the simplest reactor that works everywhere: the listener
//! and every connection run in non-blocking mode and are polled by
//! plain loops with short idle sleeps, instead of epoll/kqueue — no
//! unsafe, no platform syscall layer, and the idle cost (a sleep-length
//! wakeup per thread) is irrelevant next to the store operations this
//! server exists to batch. The worker-facing interface (an mpsc of
//! accepted streams) would be unchanged by a readiness-API reactor.

use mwllsc::sync::{AtomicBool, Ordering};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Duration;

/// Accepts until `stop` is set, dealing streams to workers round-robin.
pub(crate) fn run_acceptor(
    listener: &TcpListener,
    workers: &[Sender<TcpStream>],
    stop: &Arc<AtomicBool>,
) {
    let mut next = 0usize;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // A send can only fail if the worker already exited,
                // which only happens on shutdown; dropping the stream
                // then is the right outcome.
                let _ = workers[next % workers.len()].send(stream);
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE): back off
                // rather than spin or die.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}
