//! L004 fixture: allocation inside a no-alloc region.

// lint: no-alloc
pub fn hot(out: &mut Vec<u8>) -> Vec<u8> {
    let v = vec![0u8; 4];
    out.extend_from_slice(&v);
    let s = format!("{}", out.len());
    s.into_bytes()
}

pub fn cold() -> Vec<u8> {
    // Unmarked fns may allocate freely.
    vec![1, 2, 3]
}
