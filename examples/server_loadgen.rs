//! Loopback load generator for [`mwllsc-server`]: M client threads ×
//! pipeline depth D standing in for "millions of users", driving the
//! sharded store through the binary protocol.
//!
//! Two key mixes run against both dispatch modes:
//!
//! * **zipfian** — 80% of requests hit 4 hot keys, the shape the wave
//!   coalescer folds into single SC commits per equal-key run;
//! * **uniform** — requests spread over the whole working set, the
//!   worst case for folding (batching still amortizes routing and
//!   shard-slot lookup).
//!
//! Every run asserts exactness: each client counts its acknowledged
//! increments per key, interleaves GETs to check per-key monotonicity
//! (a pipelined connection reads its own writes, and counters never go
//! backwards), and the final over-the-wire MGET must equal the sum of
//! all acknowledgements — network concurrency adds nothing and loses
//! nothing.
//!
//! Run with: `cargo run --release --example server_loadgen`
//!
//! [`mwllsc-server`]: mwllsc_suite::mwllsc_server

use std::sync::Barrier;
use std::time::Instant;

use mwllsc_suite::mwllsc_server::{
    Client, Dispatch, Request, Response, Server, ServerConfig, UpdateOp,
};
use mwllsc_suite::mwllsc_store::{Store, StoreConfig};

const CLIENTS: usize = 8;
const DEPTH: usize = 32;
const ROUNDS: usize = 150;
const KEYSPACE: u64 = 1 << 10;
const HOT: u64 = 4;
const SEED: u64 = 0x10AD_5EED;

/// splitmix64: one deterministic stream per (client, position).
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn key_for(mixname: &str, n: u64) -> u64 {
    match mixname {
        "zipfian" => {
            if n % 10 < 8 {
                n % HOT
            } else {
                HOT + (n >> 8) % (KEYSPACE - HOT)
            }
        }
        _ => n % KEYSPACE,
    }
}

/// One full run: fresh store + server, all clients, exact-sum check.
/// Returns requests/sec and the mean write-batch size.
fn run(mixname: &'static str, dispatch: Dispatch) -> (f64, f64) {
    let store = Store::new(StoreConfig::new(8, 4, 1, KEYSPACE));
    let server = Server::start(&store, ServerConfig::with_workers(1).dispatch(dispatch))
        .expect("bind loopback");
    let addr = server.local_addr();

    let barrier = Barrier::new(CLIENTS + 1);
    let (wall, acked) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let barrier = &barrier;
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut acked = vec![0u64; KEYSPACE as usize];
                    let mut floor = vec![0u64; KEYSPACE as usize];
                    barrier.wait();
                    for r in 0..ROUNDS {
                        let keys: Vec<u64> = (0..DEPTH)
                            .map(|i| {
                                key_for(
                                    mixname,
                                    mix(SEED, (t as u64) << 40 | (r * DEPTH + i) as u64),
                                )
                            })
                            .collect();
                        for &k in &keys {
                            c.send(&Request::Update { key: k, op: UpdateOp::Add(vec![1]) });
                        }
                        // Tail each round's pipeline with a GET on its
                        // first key: pipelined FIFO means it must observe
                        // at least everything this client was just acked.
                        c.send(&Request::Get { key: keys[0] });
                        c.flush().expect("flush pipeline");
                        for &k in &keys {
                            match c.recv().expect("recv") {
                                Response::Value(v) => {
                                    acked[k as usize] += 1;
                                    // Installed values are per-key
                                    // monotone: each is past every
                                    // increment this client was acked.
                                    assert!(
                                        v[0] >= acked[k as usize],
                                        "key {k}: installed {} < own acks {}",
                                        v[0],
                                        acked[k as usize]
                                    );
                                }
                                other => panic!("update got {other:?}"),
                            }
                        }
                        match c.recv().expect("recv get") {
                            Response::Value(v) => {
                                let k = keys[0] as usize;
                                assert!(
                                    v[0] >= acked[k] && v[0] >= floor[k],
                                    "key {k}: read-your-writes / monotonicity violated"
                                );
                                floor[k] = v[0];
                            }
                            other => panic!("get got {other:?}"),
                        }
                    }
                    acked
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let acked: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (start.elapsed(), acked)
    });

    // Exact sum, over the wire: every acknowledged increment landed
    // exactly once across all concurrent pipelines.
    let mut probe = Client::connect(addr).expect("probe connect");
    let keys: Vec<u64> = (0..KEYSPACE).collect();
    let values = probe.mget(keys).expect("probe mget").expect("in range");
    for k in 0..KEYSPACE as usize {
        let expect: u64 = acked.iter().map(|a| a[k]).sum();
        assert_eq!(values[k][0], expect, "key {k}: exact-sum check");
    }
    drop(probe);

    let stats = server.shutdown();
    assert_eq!(store.live_slot_leases(), 0, "shutdown released every lease");
    let total = (CLIENTS * ROUNDS * (DEPTH + 1)) as f64;
    (total / wall.as_secs_f64(), stats.mean_write_batch())
}

fn main() {
    println!(
        "server_loadgen: {CLIENTS} clients x depth {DEPTH} x {ROUNDS} rounds, \
         {KEYSPACE}-key store, exact-sum + per-key monotonicity asserts on\n"
    );
    for mixname in ["zipfian", "uniform"] {
        let (rps_per, _) = run(mixname, Dispatch::PerRequest);
        let (rps_co, mean_batch) = run(mixname, Dispatch::Coalesced);
        println!(
            "{mixname:>8}: per-request {:>8.0} req/s | coalesced {:>8.0} req/s \
             ({:.2}x, mean write batch {mean_batch:.1})",
            rps_per,
            rps_co,
            rps_co / rps_per,
        );
    }
    println!("\nall exactness asserts held: acked increments landed exactly once,");
    println!("pipelined reads observed their own writes, per-key values stayed monotone");
}
