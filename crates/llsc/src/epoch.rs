//! Epoch-reclamation (pointer-indirection) realization of single-word LL/SC.

use core::fmt;
use core::sync::atomic::Ordering;

use crossbeam::epoch::{self, Atomic, Owned};

use crate::{Link, LlScCell};

/// A node published through the atomic pointer.
///
/// `seq` is a 64-bit sequence number unique over the object's lifetime
/// (incremented on every successful SC/write); it is what [`Link`] snapshots
/// and what `sc`/`vl` compare, so correctness never depends on a heap
/// address not being reused.
struct Node {
    value: u64,
    seq: u64,
}

/// A single-word LL/SC/VL object holding full 64-bit values.
///
/// Each successful SC (and each `write`) allocates a fresh node carrying
/// `(value, seq+1)` and swings an atomic pointer; retired nodes are freed by
/// epoch-based reclamation (`crossbeam_epoch`). Because the link compares
/// the node's 64-bit `seq` (not the pointer), address reuse cannot cause an
/// ABA false-success, and the wrap-around bound is a full `2^64`.
///
/// Compared to [`TaggedLlSc`](crate::TaggedLlSc) this trades an allocation
/// per successful SC for full-width values and an unbounded tag. The
/// multiword algorithm only needs narrow values, so `TaggedLlSc` is its
/// default substrate; `EpochLlSc` exists (a) to cross-check the tagged
/// realization against an independently derived one and (b) as the
/// substrate ablation measured in the benches.
///
/// # Examples
///
/// ```
/// use llsc_word::{EpochLlSc, LlScCell};
///
/// let x = EpochLlSc::new(u64::MAX - 1);
/// let (v, link) = x.ll();
/// assert_eq!(v, u64::MAX - 1);
/// assert!(x.sc(link, 42));
/// assert!(!x.sc(link, 43));
/// assert_eq!(x.read(), 42);
/// ```
pub struct EpochLlSc {
    ptr: Atomic<Node>,
}

impl fmt::Debug for EpochLlSc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochLlSc").field("value", &self.read()).finish()
    }
}

impl EpochLlSc {
    /// Creates an object with initial value `init`.
    #[must_use]
    pub fn new(init: u64) -> Self {
        Self { ptr: Atomic::new(Node { value: init, seq: 0 }) }
    }

    #[cfg(debug_assertions)]
    fn id(&self) -> usize {
        self as *const Self as usize
    }

    fn make_link(&self, seq: u64) -> Link {
        Link {
            snapshot: seq,
            #[cfg(debug_assertions)]
            owner: self.id(),
        }
    }

    #[cfg(debug_assertions)]
    fn check_link(&self, link: &Link) {
        debug_assert_eq!(
            link.owner,
            self.id(),
            "Link used with an object other than the one that issued it"
        );
    }

    #[cfg(not(debug_assertions))]
    fn check_link(&self, _link: &Link) {}

    /// Installs `v` iff the current node's `seq` equals `expect_seq`.
    fn cas_from_seq(&self, expect_seq: u64, v: u64) -> bool {
        let guard = &epoch::pin();
        let cur = self.ptr.load(Ordering::SeqCst, guard);
        // SAFETY: `cur` was loaded under `guard`, so the node cannot be
        // freed while we hold the guard; the pointer is never null after
        // construction.
        let cur_node = unsafe { cur.deref() };
        if cur_node.seq != expect_seq {
            return false;
        }
        let next = Owned::new(Node { value: v, seq: expect_seq + 1 });
        match self.ptr.compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst, guard) {
            Ok(_) => {
                // SAFETY: `cur` has been unlinked by this CAS and can no
                // longer be reached by new readers; defer destruction until
                // all current pins are released.
                unsafe { guard.defer_destroy(cur) };
                true
            }
            Err(_) => false,
        }
    }
}

impl LlScCell for EpochLlSc {
    fn ll(&self) -> (u64, Link) {
        let guard = &epoch::pin();
        let cur = self.ptr.load(Ordering::SeqCst, guard);
        // SAFETY: loaded under `guard`; never null.
        let node = unsafe { cur.deref() };
        (node.value, self.make_link(node.seq))
    }

    fn sc(&self, link: Link, v: u64) -> bool {
        self.check_link(&link);
        self.cas_from_seq(link.snapshot, v)
    }

    fn vl(&self, link: Link) -> bool {
        self.check_link(&link);
        let guard = &epoch::pin();
        let cur = self.ptr.load(Ordering::SeqCst, guard);
        // SAFETY: loaded under `guard`; never null.
        unsafe { cur.deref() }.seq == link.snapshot
    }

    fn read(&self) -> u64 {
        let guard = &epoch::pin();
        let cur = self.ptr.load(Ordering::SeqCst, guard);
        // SAFETY: loaded under `guard`; never null.
        unsafe { cur.deref() }.value
    }

    fn write(&self, v: u64) {
        // Retry loop: lock-free. Same usage argument as TaggedLlSc::write —
        // within the multiword algorithm every `write` is effectively
        // uncontended, so the loop exits after O(1) attempts.
        loop {
            let seq = {
                let guard = epoch::pin();
                let cur = self.ptr.load(Ordering::SeqCst, &guard);
                // SAFETY: loaded under `guard`; never null.
                unsafe { cur.deref() }.seq
            };
            if self.cas_from_seq(seq, v) {
                return;
            }
        }
    }

    fn max_value(&self) -> u64 {
        u64::MAX
    }
}

impl Drop for EpochLlSc {
    fn drop(&mut self) {
        // We have exclusive access; reclaim the final node immediately.
        let guard = &epoch::pin();
        let cur = self.ptr.load(Ordering::Relaxed, guard);
        if !cur.is_null() {
            // SAFETY: exclusive access (`&mut self`), no other thread can
            // observe the pointer; convert back to Owned to drop it.
            unsafe {
                let _ = cur.into_owned();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_width_values() {
        let x = EpochLlSc::new(u64::MAX);
        assert_eq!(x.read(), u64::MAX);
        let (v, link) = x.ll();
        assert_eq!(v, u64::MAX);
        assert!(x.sc(link, 0));
        assert_eq!(x.read(), 0);
    }

    #[test]
    fn sc_semantics_match_spec() {
        let x = EpochLlSc::new(1);
        let (_, l1) = x.ll();
        let (_, l2) = x.ll();
        assert!(x.sc(l2, 2));
        assert!(!x.sc(l1, 3));
        assert!(!x.vl(l1));
        assert_eq!(x.read(), 2);
    }

    #[test]
    fn write_invalidates() {
        let x = EpochLlSc::new(5);
        let (_, link) = x.ll();
        x.write(5);
        assert!(!x.vl(link));
        assert!(!x.sc(link, 6));
    }

    #[test]
    fn aba_immune_across_value_cycles() {
        let x = EpochLlSc::new(7);
        let (_, stale) = x.ll();
        for _ in 0..100 {
            let (_, l) = x.ll();
            assert!(x.sc(l, 9));
            let (_, l) = x.ll();
            assert!(x.sc(l, 7));
        }
        assert!(!x.sc(stale, 8));
        assert_eq!(x.read(), 7);
    }

    #[test]
    fn concurrent_fetch_increment_is_exact() {
        const THREADS: usize = 8;
        const PER: u64 = 5_000;
        let x = Arc::new(EpochLlSc::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let x = Arc::clone(&x);
            handles.push(std::thread::spawn(move || {
                let mut done = 0;
                while done < PER {
                    let (v, link) = x.ll();
                    if x.sc(link, v + 1) {
                        done += 1;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(x.read(), THREADS as u64 * PER);
    }

    #[test]
    fn drop_reclaims_without_leak_or_crash() {
        for _ in 0..1000 {
            let x = EpochLlSc::new(3);
            let (_, l) = x.ll();
            assert!(x.sc(l, 4));
        }
    }
}
