//! Scenario bridges: the shipping code under the model checker.
//!
//! Only compiled with `--cfg mwllsc_model`, because only then do the
//! `llsc-word` / `mwllsc` crates route their accesses through the
//! instrumented facade. Three scenario families:
//!
//! - [`RealMwSystem`]: the real [`MwLlSc`] with a *twin* — a fresh
//!   [`interp`](crate::interp) simulation of the same programs — advanced
//!   in lock-step, one interpreter step per granted real access. At every
//!   decision the bridge checks that the set of runnable processes and
//!   the pending access of each (kind + algorithmic label) are exactly
//!   what the interpreter predicts; after the path it checks that the
//!   operation histories agree event for event (including the decision
//!   stamps) and feeds the shared history through the I1/I2/LP monitors
//!   and the Wing–Gong linearizability checker. Any divergence between
//!   the paper's pseudocode and the compiled implementation surfaces as a
//!   step-level mismatch with the schedule that exposes it.
//! - [`RegistrySystem`]: lease/release races on the raw [`SlotRegistry`].
//! - [`run_ebr_scenario`]: swap storms over a
//!   [`DeferredSwapCell`](llsc_word::DeferredSwapCell), driving the
//!   epoch-reclamation machinery under a controlled schedule. EBR keeps
//!   process-global state (the global epoch, participant registry, limbo
//!   bags) that survives across paths on the pooled actor threads, so
//!   these runs are scheduler-driven with logical assertions only — never
//!   exhaustive DFS, which requires path-to-path determinism.
//!
//! On top of the structural checks, [`ordering_violation`] lints every
//! executed access against the crate's memory-ordering policy. The
//! controller *serializes* accesses, so a weakened ordering can never
//! change an outcome under the model — the lint is what catches a
//! `Release` demoted to `Relaxed` (the acceptance drill for this
//! subsystem) that only a weak-memory execution could punish.

// lint: facade-exempt(the dynamic ordering lint inspects orderings the facade's hook reports; routing the checker through the facade would be circular)
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::{Arc, Mutex};

use llsc_word::sync::hook::{with_hook, AccessKind, Label, StepHook};
use llsc_word::DeferredSwapCell;
use mwllsc::{MwLlSc, SlotRegistry};

use crate::history::{EventKind, History, OpDesc, RespDesc};
use crate::interp::{Pc, SimOp};
use crate::invariants::Monitors;
use crate::lp::LpMonitor;
use crate::runner::{turn, RunConfig, Sim};
use crate::sched::Scheduler;
use crate::wg::{check_linearizable, CheckConfig};

use super::ctrl::{ActorBody, ActorHook, ActorSig, Controller, PathEvent, PathTrace};
use super::dfs::{explore, explore_parallel, DfsConfig, DfsReport, ReplaySystem};

// ———————————————————————— ordering policy ————————————————————————

/// Checks one executed access against the memory-ordering policy of the
/// shipping code, keyed by the location's algorithmic label:
///
/// - `X` / `Bank` / `Help`: the Figure 2 variables — every access (and
///   every compare-exchange failure ordering) must be `SeqCst`; the
///   correctness argument treats them as a sequentially consistent
///   shared memory.
/// - `BUF`: safe-register buffer words — loads and stores, `Relaxed`
///   (publication rides on the `SeqCst` `X`/`Help` accesses around them).
/// - `SLOT`: registry slot words — RMWs must be `AcqRel`+, a release
///   store must be `Release`+ (it publishes the leaseholder's writes to
///   the next leaseholder), loads are unconstrained.
/// - `RINGH` / `RINGT`: the mesh's SPSC ring indices — single-writer
///   cells where every atomic access is a cross-thread edge: stores must
///   be `Release`+ (they publish slot writes / slot reuse), loads must
///   be `Acquire`+ (the owner never re-loads its own index).
/// - `CURS` and unlabeled locations: unconstrained.
///
/// Returns a description of the violation, or `None` if the access
/// conforms.
#[must_use]
pub fn ordering_violation(sig: &ActorSig) -> Option<String> {
    use AtomicOrdering as O;
    let at_least = |have: AtomicOrdering, floor: &[AtomicOrdering]| floor.contains(&have);
    let label = sig.label?;
    let fail = |need: &str| {
        Some(format!(
            "ordering policy: {} {:?} on {} uses {:?}{} — needs {need}",
            match sig.kind {
                AccessKind::Load => "load",
                AccessKind::Store => "store",
                AccessKind::Rmw => "rmw",
                AccessKind::Fence => "fence",
                AccessKind::Yield => "yield",
            },
            sig.kind,
            label,
            sig.order,
            sig.failure.map(|f| format!(" (failure {f:?})")).unwrap_or_default(),
        ))
    };
    match label.name {
        "X" | "Bank" | "Help"
            if sig.order != O::SeqCst || sig.failure.is_some_and(|f| f != O::SeqCst) =>
        {
            fail("SeqCst everywhere (Figure 2 shared memory)")
        }
        "BUF" if sig.order != O::Relaxed => {
            fail("Relaxed (safe-register words; ordering rides on X/Help)")
        }
        "SLOT" => match sig.kind {
            AccessKind::Rmw if !at_least(sig.order, &[O::AcqRel, O::SeqCst]) => {
                fail("AcqRel or stronger (lease handover)")
            }
            AccessKind::Store if !at_least(sig.order, &[O::Release, O::SeqCst]) => {
                fail("Release or stronger (publishes the holder's writes)")
            }
            _ => None,
        },
        "RINGH" | "RINGT" => match sig.kind {
            AccessKind::Load if !at_least(sig.order, &[O::Acquire, O::SeqCst]) => {
                fail("Acquire or stronger (cross-side index observation)")
            }
            AccessKind::Store if !at_least(sig.order, &[O::Release, O::SeqCst]) => {
                fail("Release or stronger (publishes the owning side's slot accesses)")
            }
            AccessKind::Rmw if !at_least(sig.order, &[O::AcqRel, O::SeqCst]) => {
                fail("AcqRel or stronger (single-writer ring index; RMWs must pair both edges)")
            }
            _ => None,
        },
        _ => None,
    }
}

/// Lints every access of a path log; returns the first violation.
fn lint_log(trace: &PathTrace) -> Option<String> {
    trace.log.iter().find_map(|e| ordering_violation(&e.sig))
}

// ———————————————————————— the MwLlSc twin ————————————————————————

/// What real access the twin's next interpreter step for `pid` maps to,
/// as `(kind, label)`. `None` for local-only steps (lines 16 and 20),
/// which the twin driver drains without consuming a real access.
fn expected_access(sim: &Sim, pid: usize) -> Option<(AccessKind, Label)> {
    let proc = &sim.procs[pid];
    let n = sim.state.n as u32;
    let lab = |name: &'static str, a: u32, b: u32| Label { name, a, b };
    let pc = if proc.pc == Pc::Idle {
        // Idle with program remaining: the real actor is parked at the
        // *first* access of its next operation.
        match &sim.programs[pid][sim.pos[pid]] {
            SimOp::Ll => Pc::L1,
            SimOp::LlRetry => Pc::R2,
            SimOp::Sc(_) | SimOp::ScBump(_) => Pc::L12,
            SimOp::Vl => Pc::L23,
        }
    } else {
        proc.pc
    };
    let p = pid as u32;
    Some(match pc {
        Pc::Idle => unreachable!("idle handled above"),
        // LL: announce (line 1, a fetch_update), then the read/help dance.
        Pc::L1 => (AccessKind::Rmw, lab("Help", p, 0)),
        Pc::L2 | Pc::L5 | Pc::L7 | Pc::L12Vl | Pc::L14Vl | Pc::L23 | Pc::R2 | Pc::R7 => {
            (AccessKind::Load, lab("X", 0, 0))
        }
        Pc::L3(i) | Pc::L6(i) | Pc::R3(i) => (AccessKind::Load, lab("BUF", proc.x.buf, i as u32)),
        Pc::L7Copy(i) => (AccessKind::Load, lab("BUF", proc.b4, i as u32)),
        Pc::L4 | Pc::L8 | Pc::L10 => (AccessKind::Load, lab("Help", p, 0)),
        Pc::L9 => (AccessKind::Rmw, lab("Help", p, 0)),
        Pc::L11(i) => (AccessKind::Store, lab("BUF", proc.mybuf, i as u32)),
        // SC: the Bank fix-up, the help donation, the value install.
        Pc::L12 => (AccessKind::Load, lab("Bank", proc.x.seq, 0)),
        Pc::L13 => (AccessKind::Rmw, lab("Bank", proc.x.seq, 0)),
        Pc::L14 => (AccessKind::Load, lab("Help", proc.x.seq % n, 0)),
        Pc::L15 => (AccessKind::Rmw, lab("Help", proc.x.seq % n, 0)),
        Pc::L16 | Pc::L20 => return None,
        Pc::L17(i) => (AccessKind::Store, lab("BUF", proc.mybuf, i as u32)),
        Pc::L18 => (AccessKind::Load, lab("Bank", (proc.x.seq + 1) % (2 * n), 0)),
        Pc::L19 => (AccessKind::Rmw, lab("X", 0, 0)),
    })
}

/// A real-vs-twin scenario: `programs.len()` processes run their op
/// sequences against one `W`-word [`MwLlSc`].
#[derive(Clone, Debug)]
pub struct MwScenario {
    /// Words per value.
    pub w: usize,
    /// Initial value (length `w`).
    pub initial: Vec<u64>,
    /// Per-process operation sequences ([`SimOp::LlRetry`] is rejected:
    /// the twin's retry-loop is a per-op choice, the real object's is a
    /// per-object strategy, so the two cannot be matched op-for-op).
    pub programs: Vec<Vec<SimOp>>,
}

/// The outcome of one completed (non-abandoned) real-vs-twin path.
#[derive(Clone, Debug)]
pub struct MwPathOutcome {
    /// Scheduling decisions taken (= real shared-memory accesses).
    pub decisions: usize,
    /// The operation history (identical between real and twin — checked).
    pub history: History,
    /// The twin's final abstract value of `O`.
    pub final_value: Vec<u64>,
}

/// The shipping [`MwLlSc`] as a replayable system for the DFS.
///
/// Each [`run_path`](ReplaySystem::run_path) builds a fresh object, a
/// fresh twin, and fresh actor bodies, so paths are mutually independent
/// (the `TaggedLlSc` tag counters restart from zero with the object —
/// the property that makes stateless replay deterministic).
pub struct RealMwSystem {
    ctrl: Controller,
    scenario: MwScenario,
}

impl std::fmt::Debug for RealMwSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealMwSystem").field("scenario", &self.scenario).finish()
    }
}

/// One real actor: claims its registry slot (untrapped — lease traffic
/// is path setup, not schedule), then runs its op sequence under the
/// hook, noting op boundaries for the history comparison.
fn mw_actor_body(obj: Arc<MwLlSc>, p: usize, program: Vec<SimOp>, w: usize) -> ActorBody {
    Box::new(move |hook: Arc<ActorHook>| {
        let mut h = obj.claim(p).expect("slot p is free at path start");
        let steps: Arc<dyn StepHook> = Arc::clone(&hook) as Arc<dyn StepHook>;
        with_hook(steps, || {
            let mut out = vec![0u64; w];
            let mut linked = vec![0u64; w];
            for op in &program {
                match op {
                    SimOp::Ll => {
                        hook.note_invoke(OpDesc::Ll);
                        h.ll(&mut out);
                        linked.copy_from_slice(&out);
                        hook.note_respond(RespDesc::Ll(out.clone()));
                    }
                    SimOp::LlRetry => unreachable!("rejected by RealMwSystem::new"),
                    SimOp::Sc(v) => {
                        hook.note_invoke(OpDesc::Sc(v.clone()));
                        let ok = h.sc(v);
                        hook.note_respond(RespDesc::Sc(ok));
                    }
                    SimOp::ScBump(delta) => {
                        // Same resolution rule as the twin's `begin`: the
                        // latest LL's value, plus delta on word 0.
                        let mut v = linked.clone();
                        v[0] = v[0].wrapping_add(*delta);
                        hook.note_invoke(OpDesc::Sc(v.clone()));
                        let ok = h.sc(&v);
                        hook.note_respond(RespDesc::Sc(ok));
                    }
                    SimOp::Vl => {
                        hook.note_invoke(OpDesc::Vl);
                        let ok = h.vl();
                        hook.note_respond(RespDesc::Vl(ok));
                    }
                }
            }
        });
        // `h` drops here, after the hook is uninstalled: the release
        // store on the slot runs untrapped.
        drop(h);
    })
}

/// Compares the controller's op events against the twin's history,
/// per process and stamp for stamp.
fn compare_histories(twin: &History, real: &[PathEvent], n: usize) -> Option<String> {
    #[derive(Debug, PartialEq)]
    enum Ev {
        I(OpDesc, u64),
        R(RespDesc, u64),
    }
    let mut twin_by_pid: Vec<Vec<Ev>> = (0..n).map(|_| Vec::new()).collect();
    for e in &twin.events {
        twin_by_pid[e.pid].push(match &e.kind {
            EventKind::Invoke(op) => Ev::I(op.clone(), e.step),
            EventKind::Respond(r) => Ev::R(r.clone(), e.step),
        });
    }
    let mut real_by_pid: Vec<Vec<Ev>> = (0..n).map(|_| Vec::new()).collect();
    for e in real {
        match e {
            PathEvent::Invoke { actor, op, decision } => {
                real_by_pid[*actor].push(Ev::I(op.clone(), *decision as u64));
            }
            PathEvent::Respond { actor, resp, decision } => {
                real_by_pid[*actor].push(Ev::R(resp.clone(), *decision as u64));
            }
        }
    }
    for pid in 0..n {
        let (t, r) = (&twin_by_pid[pid], &real_by_pid[pid]);
        if t != r {
            let at =
                t.iter().zip(r.iter()).position(|(a, b)| a != b).unwrap_or(t.len().min(r.len()));
            return Some(format!(
                "history drift for p{pid} at event {at}: twin {:?}, real {:?}",
                t.get(at),
                r.get(at)
            ));
        }
    }
    None
}

impl RealMwSystem {
    /// Builds the system (one controller, pooled actor threads).
    ///
    /// # Panics
    ///
    /// Panics on malformed scenarios: empty programs, width mismatch, or
    /// a [`SimOp::LlRetry`] (see [`MwScenario::programs`]).
    #[must_use]
    pub fn new(scenario: MwScenario) -> Self {
        assert!(!scenario.programs.is_empty(), "scenario needs at least one process");
        assert_eq!(scenario.initial.len(), scenario.w, "initial value width mismatch");
        assert!(
            !scenario.programs.iter().flatten().any(|op| matches!(op, SimOp::LlRetry)),
            "LlRetry is not twin-checkable (per-op vs per-object strategy)"
        );
        let n = scenario.programs.len();
        Self { ctrl: Controller::new(n), scenario }
    }

    /// The scenario this system runs.
    #[must_use]
    pub fn scenario(&self) -> &MwScenario {
        &self.scenario
    }

    /// Runs one path under `pick`, lock-stepping the twin and running
    /// every per-path check.
    ///
    /// Returns `Ok(None)` when `pick` abandoned the path (DFS prune /
    /// depth bound), `Ok(Some(outcome))` for a clean completed path, and
    /// `Err(reason)` for any check failure.
    pub fn run_once(
        &self,
        pick: &mut dyn FnMut(&[ActorSig]) -> Option<usize>,
    ) -> Result<Option<MwPathOutcome>, String> {
        let n = self.scenario.programs.len();
        let w = self.scenario.w;
        let obj = MwLlSc::new(n, w, &self.scenario.initial);
        let mut sim = Sim::new(w, &self.scenario.initial, self.scenario.programs.clone());
        let mut monitors = Monitors::new(n);
        let mut lp = LpMonitor::new(n, sim.state.abstract_value());
        let mut history = History::default();
        let runcfg = RunConfig::default();

        let bodies: Vec<ActorBody> = (0..n)
            .map(|p| mw_actor_body(Arc::clone(&obj), p, self.scenario.programs[p].clone(), w))
            .collect();

        let mut twin_err: Option<String> = None;
        let mut decisions = 0usize;
        let trace = self.ctrl.run_path(bodies, &mut |runnable| {
            if twin_err.is_some() {
                return None;
            }
            // The twin must agree on who is runnable...
            let twin_run = sim.runnable();
            let real_run: Vec<usize> = runnable.iter().map(|s| s.actor).collect();
            if twin_run != real_run {
                twin_err = Some(format!(
                    "runnable-set drift at decision {decisions}: twin {twin_run:?}, real {real_run:?}"
                ));
                return None;
            }
            // ...and on what each runnable process is about to do.
            for sig in runnable {
                match expected_access(&sim, sig.actor) {
                    Some((kind, label)) => {
                        if sig.kind != kind || sig.label != Some(label) {
                            twin_err = Some(format!(
                                "access drift at decision {decisions}: p{} parked at {sig}, \
                                 twin (pc {:?}) expects {kind:?} {label}",
                                sig.actor, sim.procs[sig.actor].pc
                            ));
                            return None;
                        }
                    }
                    None => {
                        twin_err = Some(format!(
                            "twin desync at decision {decisions}: p{} is at local-only pc {:?} \
                             yet the real process is parked at {sig}",
                            sig.actor, sim.procs[sig.actor].pc
                        ));
                        return None;
                    }
                }
            }
            let c = pick(runnable)?;
            let pid = runnable[c].actor;
            let d = decisions as u64;
            decisions += 1;
            // Advance the twin by the one step this grant realizes, then
            // drain local-only steps (lines 16 and 20 touch no shared
            // memory in the real code).
            loop {
                if let Err(v) = turn(&mut sim, pid, &mut monitors, &mut lp, &runcfg, &mut history, d)
                {
                    twin_err = Some(format!("twin violation at decision {d}: {v}"));
                    return None;
                }
                if !matches!(sim.procs[pid].pc, Pc::L16 | Pc::L20) {
                    break;
                }
            }
            Some(c)
        });

        // An ordering violation is a finding even on a partial log.
        if let Some(e) = lint_log(&trace) {
            return Err(e);
        }
        if let Some(e) = twin_err {
            return Err(e);
        }
        if let Some(e) = trace.error {
            return Err(e);
        }
        if trace.aborted {
            return Ok(None);
        }
        if !sim.is_done() {
            return Err(format!(
                "real actors finished but the twin still has runnable processes {:?}",
                sim.runnable()
            ));
        }
        if let Some(e) = compare_histories(&history, &trace.events, n) {
            return Err(e);
        }
        if let Err(e) = check_linearizable(&history, &self.scenario.initial, CheckConfig::default())
        {
            return Err(format!("non-linearizable path: {e}\n{}", history.render()));
        }
        Ok(Some(MwPathOutcome {
            decisions,
            history,
            final_value: sim.state.abstract_value().to_vec(),
        }))
    }
}

impl ReplaySystem for RealMwSystem {
    fn run_path(&mut self, pick: &mut dyn FnMut(&[ActorSig]) -> Option<usize>) -> Option<String> {
        self.run_once(pick).err()
    }
}

/// Exhaustively explores every interleaving of `scenario`'s real
/// shared-memory accesses (sleep-set reduced), twin-checking each path.
#[must_use]
pub fn explore_mw(scenario: MwScenario, cfg: &DfsConfig) -> DfsReport {
    let mut sys = RealMwSystem::new(scenario);
    explore(&mut sys, cfg)
}

/// [`explore_mw`] partitioned over `workers` threads, each with its own
/// controller and actor pool.
#[must_use]
pub fn explore_mw_parallel(scenario: MwScenario, workers: usize, cfg: &DfsConfig) -> DfsReport {
    explore_parallel(|_| RealMwSystem::new(scenario.clone()), workers, cfg)
}

// ———————————————————————— scheduler adapter ————————————————————————

/// Adapts a classic [`Scheduler`] (which picks *process ids*) to the
/// controller's picker (which picks *indices into the runnable slice*),
/// abandoning the path after `max_decisions`.
pub fn sched_picker<'s, S: Scheduler>(
    sched: &'s mut S,
    max_decisions: u64,
) -> impl FnMut(&[ActorSig]) -> Option<usize> + 's {
    let mut step = 0u64;
    move |runnable: &[ActorSig]| {
        if step >= max_decisions {
            return None;
        }
        let pids: Vec<usize> = runnable.iter().map(|s| s.actor).collect();
        let pid = sched.pick(&pids, step);
        step += 1;
        runnable.iter().position(|s| s.actor == pid)
    }
}

/// Runs `scenario` once under `sched`, real against twin, with every
/// per-path check. Errors on drift, on any violated invariant, and on
/// failing to complete within `max_decisions`.
pub fn drift_run<S: Scheduler>(
    scenario: &MwScenario,
    sched: &mut S,
    max_decisions: u64,
) -> Result<MwPathOutcome, String> {
    let sys = RealMwSystem::new(scenario.clone());
    match sys.run_once(&mut sched_picker(sched, max_decisions))? {
        Some(outcome) => Ok(outcome),
        None => Err(format!("schedule budget ({max_decisions} decisions) exhausted")),
    }
}

// ———————————————————————— registry scenarios ————————————————————————

/// One step of a registry actor's program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegOp {
    /// Try to lease this exact slot.
    LeaseExact(usize),
    /// Try to lease any free slot.
    LeaseAny,
    /// Release the most recently acquired still-held slot, carrying this
    /// payload back. No-op if the actor holds nothing.
    Release(u32),
}

/// What one lease attempt observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaseOutcome {
    /// The lease succeeded.
    Got {
        /// The leased slot.
        slot: usize,
        /// The payload it carried.
        payload: u32,
    },
    /// The slot (or every slot) was held.
    Busy,
}

/// Post-path predicate over the final registry state and each actor's
/// lease outcomes (indexed like the programs). Returns a violation
/// description, or `None` if the path is acceptable.
pub type RegistryCheck = fn(&SlotRegistry, &[Vec<LeaseOutcome>]) -> Option<String>;

/// Lease/release races on the raw [`SlotRegistry`] as a replayable
/// system: every slot and cursor access is a schedule point.
pub struct RegistrySystem {
    ctrl: Controller,
    slots: usize,
    programs: Vec<Vec<RegOp>>,
    check: RegistryCheck,
}

impl std::fmt::Debug for RegistrySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistrySystem")
            .field("slots", &self.slots)
            .field("programs", &self.programs)
            .finish()
    }
}

impl RegistrySystem {
    /// Builds the system: a fresh `slots`-slot registry per path, one
    /// actor per program, `check` evaluated after every completed path.
    #[must_use]
    pub fn new(slots: usize, programs: Vec<Vec<RegOp>>, check: RegistryCheck) -> Self {
        assert!(!programs.is_empty(), "scenario needs at least one actor");
        let n = programs.len();
        Self { ctrl: Controller::new(n), slots, programs, check }
    }
}

impl ReplaySystem for RegistrySystem {
    fn run_path(&mut self, pick: &mut dyn FnMut(&[ActorSig]) -> Option<usize>) -> Option<String> {
        let n = self.programs.len();
        let reg = Arc::new(SlotRegistry::new(self.slots));
        let results: Arc<Mutex<Vec<Vec<LeaseOutcome>>>> = Arc::new(Mutex::new(vec![Vec::new(); n]));

        let bodies: Vec<ActorBody> = (0..n)
            .map(|a| {
                let reg = Arc::clone(&reg);
                let results = Arc::clone(&results);
                let program = self.programs[a].clone();
                Box::new(move |hook: Arc<ActorHook>| {
                    let steps: Arc<dyn StepHook> = Arc::clone(&hook) as Arc<dyn StepHook>;
                    let mut held: Vec<usize> = Vec::new();
                    let mut outcomes: Vec<LeaseOutcome> = Vec::new();
                    with_hook(steps, || {
                        for op in &program {
                            match op {
                                RegOp::LeaseExact(p) => match reg.lease_exact(*p) {
                                    Some(payload) => {
                                        held.push(*p);
                                        outcomes.push(LeaseOutcome::Got { slot: *p, payload });
                                    }
                                    None => outcomes.push(LeaseOutcome::Busy),
                                },
                                RegOp::LeaseAny => match reg.lease_any() {
                                    Some((slot, payload)) => {
                                        held.push(slot);
                                        outcomes.push(LeaseOutcome::Got { slot, payload });
                                    }
                                    None => outcomes.push(LeaseOutcome::Busy),
                                },
                                RegOp::Release(payload) => {
                                    if let Some(slot) = held.pop() {
                                        reg.release(slot, *payload);
                                    }
                                }
                            }
                        }
                    });
                    // A std mutex, not a facade access: invisible to the
                    // schedule, and never held across a park.
                    results.lock().unwrap()[a] = outcomes;
                }) as ActorBody
            })
            .collect();

        let trace = self.ctrl.run_path(bodies, pick);
        if let Some(e) = lint_log(&trace) {
            return Some(e);
        }
        if let Some(e) = trace.error {
            return Some(e);
        }
        if trace.aborted {
            return None;
        }
        let results = results.lock().unwrap();
        (self.check)(&reg, &results)
    }
}

// ———————————————————————— EBR scenarios ————————————————————————

/// The outcome of one scheduler-driven EBR path.
#[derive(Clone, Debug)]
pub struct EbrOutcome {
    /// Successful `compare_swap`s per actor.
    pub wins: Vec<u64>,
    /// The cell's final payload.
    pub final_value: u64,
    /// The cell's final sequence number.
    pub final_seq: u64,
    /// Live + retired-but-unreclaimed nodes at the end of the path.
    pub tracked_nodes: usize,
}

/// Runs `actors` concurrent load → compare-swap increment loops
/// (`attempts` each) over one [`DeferredSwapCell`] under `sched`, every
/// facade access — including the epoch pins, retires, and advance scans
/// inside the reclamation subsystem — serialized by the controller.
///
/// Scheduler-driven only (see the module docs for why EBR is never
/// DFS-explored). The consistency checks are logical: a `compare_swap`
/// keyed on the observed sequence number wins iff the value was still
/// current, so the final value and sequence number must both equal the
/// total number of wins.
pub fn run_ebr_scenario<S: Scheduler>(
    actors: usize,
    attempts: u64,
    sched: &mut S,
    max_decisions: u64,
) -> Result<EbrOutcome, String> {
    assert!(actors > 0, "need at least one actor");
    let ctrl = Controller::new(actors);
    let cell = Arc::new(DeferredSwapCell::new(0u64));
    let wins: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![0; actors]));

    let bodies: Vec<ActorBody> = (0..actors)
        .map(|a| {
            let cell = Arc::clone(&cell);
            let wins = Arc::clone(&wins);
            Box::new(move |hook: Arc<ActorHook>| {
                let steps: Arc<dyn StepHook> = Arc::clone(&hook) as Arc<dyn StepHook>;
                let mut won = 0u64;
                with_hook(steps, || {
                    for _ in 0..attempts {
                        let p = cell.load();
                        let (v, seq) = (*p, p.seq());
                        drop(p);
                        if cell.compare_swap(seq, v + 1) {
                            won += 1;
                        }
                    }
                });
                wins.lock().unwrap()[a] = won;
            }) as ActorBody
        })
        .collect();

    let trace = ctrl.run_path(bodies, &mut sched_picker(sched, max_decisions));
    if let Some(e) = trace.error {
        return Err(e);
    }
    if trace.aborted {
        return Err(format!("schedule budget ({max_decisions} decisions) exhausted"));
    }
    let wins = wins.lock().unwrap().clone();
    let total: u64 = wins.iter().sum();
    let p = cell.load();
    let (final_value, final_seq) = (*p, p.seq());
    drop(p);
    if final_value != total || final_seq != total {
        return Err(format!(
            "EBR cell inconsistent: {total} wins but final value {final_value}, seq {final_seq}"
        ));
    }
    Ok(EbrOutcome { wins, final_value, final_seq, tracked_nodes: cell.tracked_nodes() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering as O;

    fn sig(kind: AccessKind, name: &'static str, order: O, failure: Option<O>) -> ActorSig {
        ActorSig { actor: 0, kind, label: Some(Label { name, a: 0, b: 0 }), order, failure }
    }

    #[test]
    fn policy_accepts_the_shipping_orderings() {
        for s in [
            sig(AccessKind::Load, "X", O::SeqCst, None),
            sig(AccessKind::Rmw, "X", O::SeqCst, Some(O::SeqCst)),
            sig(AccessKind::Rmw, "Help", O::SeqCst, None),
            sig(AccessKind::Load, "BUF", O::Relaxed, None),
            sig(AccessKind::Store, "BUF", O::Relaxed, None),
            sig(AccessKind::Rmw, "SLOT", O::AcqRel, None),
            sig(AccessKind::Store, "SLOT", O::Release, None),
            sig(AccessKind::Load, "SLOT", O::Relaxed, None),
            sig(AccessKind::Rmw, "CURS", O::Relaxed, None),
        ] {
            assert_eq!(ordering_violation(&s), None, "{s}");
        }
    }

    #[test]
    fn policy_rejects_weakened_orderings() {
        // The acceptance drill: a SLOT release demoted to Relaxed (the
        // next leaseholder could observe the previous holder's writes
        // torn) must be flagged even though serialized execution cannot
        // punish it.
        for s in [
            sig(AccessKind::Store, "SLOT", O::Relaxed, None),
            sig(AccessKind::Rmw, "SLOT", O::Acquire, None),
            sig(AccessKind::Load, "X", O::Acquire, None),
            sig(AccessKind::Rmw, "Bank", O::SeqCst, Some(O::Relaxed)),
            sig(AccessKind::Store, "BUF", O::Release, None),
        ] {
            assert!(ordering_violation(&s).is_some(), "{s} should violate policy");
        }
    }

    #[test]
    fn unlabeled_accesses_are_not_linted() {
        let s = ActorSig {
            actor: 0,
            kind: AccessKind::Store,
            label: None,
            order: O::Relaxed,
            failure: None,
        };
        assert_eq!(ordering_violation(&s), None);
    }

    #[test]
    fn expected_access_peeks_idle_ops() {
        let sim = Sim::new(1, &[0], vec![vec![SimOp::Ll], vec![SimOp::Ll]]);
        let (kind, label) = expected_access(&sim, 1).unwrap();
        assert_eq!(kind, AccessKind::Rmw, "LL opens with the line-1 announce");
        assert_eq!(label, Label { name: "Help", a: 1, b: 0 });
    }
}
