//! Fixture suite for the bench schema + `bench-diff` gate: the
//! end-to-end properties CI relies on — deterministic canonical JSON,
//! version gating, legacy migration, and the verdict taxonomy
//! (improvement / regression / within-noise / missing-cell /
//! schema-mismatch) exercised through real serialized files rather
//! than in-memory structs.

use mwllsc_harness::bench_diff::{diff, DiffConfig, Verdict};
use mwllsc_harness::bench_schema::{migrate_legacy, BenchFile, Cell, SchemaError, SCHEMA_VERSION};

/// A baseline-shaped file with the given `(id, rps)` cells.
fn bench(cells: &[(&str, f64)]) -> BenchFile {
    let mut f = BenchFile::new("e16-ycsb", "fixture", true, 2, "fixture suite");
    for &(id, rps) in cells {
        f.push(Cell::new(id, true, rps).latency(100.0, 900.0).counter("waves", 7.0));
    }
    f
}

/// Serializes, reparses and re-serializes — the canonical form must be
/// a fixed point, byte for byte.
#[test]
fn serialized_roundtrip_is_byte_identical() {
    let f = bench(&[("e16/store/jp-waitfree/A/zipf", 123456.75), ("e16/mesh/A/zipf", 999.9)]);
    let first = f.to_json();
    let reparsed = BenchFile::from_json(&first).expect("parse own emission");
    assert_eq!(reparsed.to_json(), first, "parse ∘ emit must be the identity");
    // And emission itself is deterministic across calls.
    assert_eq!(f.to_json(), first);
}

/// The full verdict taxonomy through serialized files: one fixture pair
/// holding an improvement, a regression, a within-noise cell, a
/// missing cell and a new cell at once.
#[test]
fn verdict_taxonomy_on_serialized_fixtures() {
    let old = bench(&[
        ("cell/improved", 1_000.0),
        ("cell/regressed", 1_000.0),
        ("cell/steady", 1_000.0),
        ("cell/missing", 1_000.0),
    ]);
    let new = bench(&[
        ("cell/improved", 2_000.0),
        ("cell/regressed", 400.0),
        ("cell/steady", 1_050.0),
        ("cell/brand-new", 5_000.0),
    ]);
    // Round-trip both sides through JSON so the comparison sees exactly
    // what CI sees on disk.
    let old = BenchFile::from_json(&old.to_json()).expect("old");
    let new = BenchFile::from_json(&new.to_json()).expect("new");
    let cfg = DiffConfig::default();
    let report = diff(&old, &new, &cfg).expect("diff");

    let verdict = |id: &str| {
        report.cells.iter().find(|c| c.id == id).map(|c| c.verdict).expect("cell in report")
    };
    assert_eq!(verdict("cell/improved"), Verdict::Improved);
    assert_eq!(verdict("cell/regressed"), Verdict::Regressed);
    assert_eq!(verdict("cell/steady"), Verdict::WithinNoise);
    assert_eq!(verdict("cell/missing"), Verdict::MissingInNew);
    assert_eq!(verdict("cell/brand-new"), Verdict::NewCell);
    assert!(report.failed(&cfg), "a regression must fail the gate");
    assert_eq!(
        (report.regressed, report.improved, report.within, report.missing, report.added),
        (1, 1, 1, 1, 1)
    );
}

/// The acceptance drill: a uniform injected 2x slowdown trips the gate;
/// the unmodified pair stays green.
#[test]
fn injected_2x_slowdown_trips_the_gate() {
    let old = bench(&[("a", 10_000.0), ("b", 20_000.0), ("c", 30_000.0)]);
    let cfg = DiffConfig::default();
    let same = diff(&old, &old.clone(), &cfg).expect("self diff");
    assert!(!same.failed(&cfg), "identical runs must pass");

    let mut slow = old.clone();
    for c in &mut slow.cells {
        c.rps /= 2.0;
    }
    let slow = BenchFile::from_json(&slow.to_json()).expect("slow");
    let report = diff(&old, &slow, &cfg).expect("diff");
    assert_eq!(report.regressed, 3);
    assert!(report.failed(&cfg));
}

/// Missing cells warn by default (the quick grid is a subset of the
/// full grid) and only fail under `--require-all`.
#[test]
fn quick_subset_passes_unless_require_all() {
    let full = bench(&[("a", 1_000.0), ("b", 1_000.0), ("c", 1_000.0)]);
    let quick = bench(&[("a", 1_000.0), ("b", 1_000.0)]);
    let cfg = DiffConfig::default();
    let report = diff(&full, &quick, &cfg).expect("diff");
    assert_eq!(report.missing, 1);
    assert!(!report.failed(&cfg));
    let strict = DiffConfig { require_all: true, ..cfg };
    assert!(diff(&full, &quick, &strict).expect("diff").failed(&strict));
}

/// Schema-mismatch: a future `schema_version` is rejected at parse
/// time with a typed error, never silently compared.
#[test]
fn schema_mismatch_is_rejected() {
    let mut f = bench(&[("a", 1.0)]);
    f.schema_version = SCHEMA_VERSION + 3;
    match BenchFile::from_json(&f.to_json()) {
        Err(SchemaError::Version { found }) => assert_eq!(found, SCHEMA_VERSION + 3),
        other => panic!("expected a version error, got {other:?}"),
    }
}

/// A failed exactness gate in the new file fails the diff even at
/// identical throughput.
#[test]
fn exactness_gate_failure_fails_even_at_parity() {
    let old = bench(&[("a", 1_000.0)]);
    let mut new = bench(&[("a", 1_000.0)]);
    new.cells[0].ok = false;
    let new = BenchFile::from_json(&new.to_json()).expect("new");
    let cfg = DiffConfig::default();
    let report = diff(&old, &new, &cfg).expect("diff");
    assert_eq!(report.gate_failures, vec!["a".to_string()]);
    assert!(report.failed(&cfg));
}

/// Legacy migration: a miniature PR 7-shaped e13 file lifts onto the
/// current schema with grid-coordinate cell ids, and migrating an
/// already-versioned file is refused.
#[test]
fn legacy_e13_migrates_onto_the_schema() {
    let legacy = r#"{
  "experiment": "e13-server",
  "rev": "pr7",
  "quick": false,
  "backend": "jp-waitfree",
  "host": {"os": "linux", "arch": "x86_64", "cores": 8, "mode": "release"},
  "batch_hist_labels": ["1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+"],
  "rows": [
    {"conns": 8, "depth": 32, "dispatch": "coalesced", "rps": 1500000,
     "mean_write_batch": 24.5, "waves": 1200, "batch_hist": [1,2,3,4,5,6,7,8]},
    {"conns": 8, "depth": 32, "dispatch": "per-request", "rps": 800000,
     "mean_write_batch": 1.00, "waves": 0, "batch_hist": []}
  ]
}"#;
    let migrated = migrate_legacy(legacy).expect("migrate");
    assert_eq!(migrated.schema_version, SCHEMA_VERSION);
    assert_eq!(migrated.experiment, "e13-server");
    assert_eq!(migrated.rev, "pr7");
    let co = migrated.cell("e13/conns=8/depth=32/coalesced").expect("coalesced cell");
    assert_eq!(co.rps, 1_500_000.0);
    assert_eq!(co.counters["mean_write_batch"], 24.5);
    assert_eq!(co.hist, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    assert!(migrated.cell("e13/conns=8/depth=32/per-request").is_some());
    // The migrated form round-trips like any native file.
    let json = migrated.to_json();
    assert_eq!(BenchFile::from_json(&json).expect("reparse").to_json(), json);
    // Migrating a current-schema file is an error, not a no-op.
    assert!(matches!(migrate_legacy(&json), Err(SchemaError::UnknownLegacy(_))));
}

/// Mispaired files (disjoint grids) are a hard error — the gate must
/// never "pass" because someone diffed a mesh file against a server
/// file.
#[test]
fn disjoint_grids_are_a_pairing_error() {
    let a = bench(&[("e13/conns=8/depth=32/coalesced", 1.0)]);
    let b = bench(&[("e15/callers=4/depth=32/mesh", 1.0)]);
    assert!(diff(&a, &b, &DiffConfig::default()).is_err());
}
