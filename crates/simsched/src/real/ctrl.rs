//! The schedule controller: serializes real threads at access granularity.
//!
//! Each *actor* is the shipping code running on a real OS thread with a
//! [`StepHook`] installed (see `llsc_word::sync`). The hook parks the
//! thread just before every shared-memory access; the controller wakes
//! exactly one parked actor per scheduling decision, waits for its access
//! to complete and the thread to park again (or finish), and only then
//! makes the next decision. At most one actor is ever between its trap and
//! its access, so an execution is fully determined by the decision
//! sequence — the property the DFS in [`super::dfs`] and the drift tests
//! rely on.
//!
//! Actor threads are pooled and reused across paths (a DFS explores
//! thousands of paths; spawning `N` threads per path would dominate the
//! run time). All coordination is a single `Mutex` + `Condvar` pair per
//! path; a watchdog bounds every wait so a bug (e.g. an actor spinning in
//! an untrapped loop) surfaces as a diagnostic instead of a hang.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use llsc_word::sync::hook::{Access, AccessKind, Label, Observed, StepHook};

use crate::history::{OpDesc, RespDesc};

/// How long the controller waits for *any* actor progress before declaring
/// the path wedged. Generous: a granted access is a handful of
/// instructions, so a genuine timeout means a harness bug (most likely an
/// actor looping without a trapped access).
const WATCHDOG: Duration = Duration::from_secs(10);

/// The schedule-relevant signature of one pending access: what the DFS
/// compares across replays (raw addresses are not stable across paths;
/// labels are).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActorSig {
    /// Actor index within the path (for the `MwLlSc` scenarios, the
    /// process id).
    pub actor: usize,
    /// Kind of the pending access.
    pub kind: AccessKind,
    /// The location's algorithmic label, if the scenario attached one.
    pub label: Option<Label>,
    /// Requested (success) memory ordering.
    // lint: facade-exempt(the controller receives orderings from the facade's hook, so it names std's type, not the facade's re-export)
    pub order: std::sync::atomic::Ordering,
    /// Failure ordering for compare-exchange accesses.
    // lint: facade-exempt(same as `order` above)
    pub failure: Option<std::sync::atomic::Ordering>,
}

impl std::fmt::Display for ActorSig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.label {
            Some(l) => write!(f, "a{} {:?} {} ({:?})", self.actor, self.kind, l, self.order),
            None => write!(f, "a{} {:?} <unlabeled> ({:?})", self.actor, self.kind, self.order),
        }
    }
}

/// One executed access, as recorded in the path log.
#[derive(Clone, Debug)]
pub struct LogEntry {
    /// The access signature (actor, kind, label, orderings).
    pub sig: ActorSig,
    /// What the access observed.
    pub observed: Observed,
}

/// One scheduling decision: who was runnable, who was chosen.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Signatures of every parked actor at this decision point.
    pub runnable: Vec<ActorSig>,
    /// Index into `runnable` of the granted actor.
    pub chosen: usize,
}

/// An operation-level event, stamped with the decision at which it became
/// visible (invocations at the op's first granted access, responses at the
/// quiescent point after the op's last access) — the same convention the
/// `simsched` interpreter uses, which is what makes the two histories
/// directly comparable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathEvent {
    /// The actor invoked this operation.
    Invoke {
        /// Actor index.
        actor: usize,
        /// The operation.
        op: OpDesc,
        /// Decision index of the op's first access.
        decision: usize,
    },
    /// The actor's current operation returned.
    Respond {
        /// Actor index.
        actor: usize,
        /// The result.
        resp: RespDesc,
        /// Decision index of the op's last access.
        decision: usize,
    },
}

/// Everything one controlled path produced.
#[derive(Clone, Debug, Default)]
pub struct PathTrace {
    /// The decision sequence.
    pub decisions: Vec<Decision>,
    /// Every executed access, in global (serialized) order.
    pub log: Vec<LogEntry>,
    /// Operation invocations/responses, in global order.
    pub events: Vec<PathEvent>,
    /// A harness-level error: actor panic, watchdog timeout, or the
    /// picker's own abort reason. `None` for a clean path.
    pub error: Option<String>,
    /// Whether the picker abandoned the path (sleep-set prune or depth
    /// bound) — the tail of the execution ran unrecorded.
    pub aborted: bool,
}

enum ActorState {
    /// Running untrapped code (or not yet at its first access).
    Running,
    /// Parked at an access, waiting for a grant.
    Parked(ActorSig),
    /// Body returned (or panicked).
    Done,
}

enum OpEvent {
    Invoke(OpDesc),
    Respond(RespDesc),
}

struct Inner {
    granted: Option<usize>,
    actors: Vec<ActorState>,
    /// Per-actor queue of op boundaries awaiting their stamping decision.
    op_events: Vec<VecDeque<OpEvent>>,
    log: Vec<LogEntry>,
    /// Set when the path is being abandoned: hooks stop parking and let
    /// bodies run to completion unrecorded.
    abort: bool,
    /// First actor panic (payload rendered), if any.
    panic: Option<String>,
}

struct Shared {
    state: Mutex<Inner>,
    cv: Condvar,
}

fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn new(n: usize) -> Self {
        Self {
            state: Mutex::new(Inner {
                granted: None,
                actors: (0..n).map(|_| ActorState::Running).collect(),
                op_events: (0..n).map(|_| VecDeque::new()).collect(),
                log: Vec::new(),
                abort: false,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until no access is in flight and every actor is parked or
    /// done; returns `(index-in-actors, sig)` for each parked actor.
    fn wait_quiescent(&self) -> Result<Vec<ActorSig>, String> {
        let start = Instant::now();
        let mut g = lock(&self.state);
        loop {
            if let Some(p) = &g.panic {
                return Err(format!("actor panicked: {p}"));
            }
            let quiescent = g.granted.is_none()
                && g.actors.iter().all(|a| matches!(a, ActorState::Parked(_) | ActorState::Done));
            if quiescent {
                let runnable = g
                    .actors
                    .iter()
                    .filter_map(|a| match a {
                        ActorState::Parked(sig) => Some(sig.clone()),
                        _ => None,
                    })
                    .collect();
                return Ok(runnable);
            }
            if start.elapsed() > WATCHDOG {
                let states: Vec<String> = g
                    .actors
                    .iter()
                    .enumerate()
                    .map(|(i, a)| match a {
                        ActorState::Running => format!("a{i}:running"),
                        ActorState::Parked(s) => format!("a{i}:parked@{s}"),
                        ActorState::Done => format!("a{i}:done"),
                    })
                    .collect();
                return Err(format!(
                    "watchdog: no quiescence after {WATCHDOG:?} (granted={:?}, {}) — \
                     an actor is likely looping without a trapped access",
                    g.granted,
                    states.join(", ")
                ));
            }
            let (g2, _) = self.cv.wait_timeout(g, WATCHDOG).unwrap_or_else(PoisonError::into_inner);
            g = g2;
        }
    }

    fn grant(&self, actor: usize) {
        let mut g = lock(&self.state);
        debug_assert!(g.granted.is_none(), "grant while an access is in flight");
        g.granted = Some(actor);
        self.cv.notify_all();
    }

    fn abort(&self) {
        let mut g = lock(&self.state);
        g.abort = true;
        g.granted = None;
        self.cv.notify_all();
    }

    /// Blocks until every actor body has returned (used when abandoning a
    /// path: with `abort` set the hooks pass accesses through untrapped,
    /// so the bodies finish at full speed).
    fn wait_all_done(&self) -> Result<(), String> {
        let start = Instant::now();
        let mut g = lock(&self.state);
        loop {
            if g.actors.iter().all(|a| matches!(a, ActorState::Done)) {
                return Ok(());
            }
            if start.elapsed() > WATCHDOG {
                return Err("watchdog: actors did not finish after abort".to_string());
            }
            let (g2, _) = self.cv.wait_timeout(g, WATCHDOG).unwrap_or_else(PoisonError::into_inner);
            g = g2;
        }
    }
}

/// One actor's connection to the controller: the [`StepHook`] that parks
/// the thread at every access, plus the op-boundary recording methods the
/// scenario body calls around each operation.
pub struct ActorHook {
    shared: Arc<Shared>,
    me: usize,
}

impl std::fmt::Debug for ActorHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ActorHook(a{})", self.me)
    }
}

impl ActorHook {
    fn sig(&self, access: &Access) -> ActorSig {
        ActorSig {
            actor: self.me,
            kind: access.kind,
            label: access.label,
            order: access.order,
            failure: access.failure,
        }
    }

    /// Records that the actor is invoking `op` (call just before the
    /// operation; the controller stamps it at the op's first access).
    pub fn note_invoke(&self, op: OpDesc) {
        let mut g = lock(&self.shared.state);
        if !g.abort {
            g.op_events[self.me].push_back(OpEvent::Invoke(op));
        }
    }

    /// Records that the actor's operation returned `resp` (call just
    /// after; the controller stamps it at the next quiescent point).
    pub fn note_respond(&self, resp: RespDesc) {
        let mut g = lock(&self.shared.state);
        if !g.abort {
            g.op_events[self.me].push_back(OpEvent::Respond(resp));
        }
    }
}

impl StepHook for ActorHook {
    fn before_access(&self, access: &Access) {
        let sig = self.sig(access);
        let mut g = lock(&self.shared.state);
        if g.abort {
            return;
        }
        g.actors[self.me] = ActorState::Parked(sig);
        self.shared.cv.notify_all();
        loop {
            if g.abort {
                break;
            }
            if g.granted == Some(self.me) {
                break;
            }
            g = self.shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        g.actors[self.me] = ActorState::Running;
    }

    fn after_access(&self, access: &Access, observed: Observed) {
        let sig = self.sig(access);
        let mut g = lock(&self.shared.state);
        if g.abort {
            return;
        }
        g.log.push(LogEntry { sig, observed });
        g.granted = None;
        self.shared.cv.notify_all();
    }
}

/// An actor body: receives its [`ActorHook`] and is responsible for
/// installing it (via `llsc_word::sync::hook::with_hook`) around exactly
/// the code whose accesses the schedule should control — e.g. the
/// `MwLlSc` scenarios claim their registry slot *before* installing the
/// hook, so lease traffic is setup, not schedule.
pub type ActorBody = Box<dyn FnOnce(Arc<ActorHook>) + Send>;

type Job = Box<dyn FnOnce() + Send>;

/// A fixed pool of OS threads reused across paths.
struct ActorPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ActorPool {
    fn new(size: usize) -> Self {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("mwllsc-model-actor-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let rx: MutexGuard<'_, Receiver<Job>> =
                                rx.lock().unwrap_or_else(PoisonError::into_inner);
                            rx.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break,
                        }
                    })
                    .expect("spawning a model-checking actor thread")
            })
            .collect();
        Self { tx: Some(tx), workers }
    }

    fn submit(&self, job: Job) {
        self.tx.as_ref().expect("pool is live").send(job).expect("actor pool workers are alive");
    }
}

impl Drop for ActorPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Drives actor bodies one shared-memory access at a time.
pub struct Controller {
    pool: ActorPool,
    max_actors: usize,
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Controller({} actor threads)", self.max_actors)
    }
}

impl Controller {
    /// Creates a controller able to run up to `max_actors` concurrent
    /// actors per path (one pooled OS thread each).
    #[must_use]
    pub fn new(max_actors: usize) -> Self {
        Self { pool: ActorPool::new(max_actors), max_actors }
    }

    /// Runs one path: executes `bodies` under this controller, asking
    /// `pick` at every quiescent point to choose one parked actor (an
    /// index into the passed slice). `pick` returning `None` abandons the
    /// path: remaining accesses run untrapped and unrecorded.
    ///
    /// # Panics
    ///
    /// Panics if `bodies` exceeds the pool size.
    pub fn run_path(
        &self,
        bodies: Vec<ActorBody>,
        pick: &mut dyn FnMut(&[ActorSig]) -> Option<usize>,
    ) -> PathTrace {
        let n = bodies.len();
        assert!(n <= self.max_actors, "path needs {n} actors, pool has {}", self.max_actors);
        let shared = Arc::new(Shared::new(n));
        for (i, body) in bodies.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            self.pool.submit(Box::new(move || {
                let hook = Arc::new(ActorHook { shared: Arc::clone(&shared), me: i });
                let result = catch_unwind(AssertUnwindSafe(|| body(hook)));
                let mut g = lock(&shared.state);
                if let Err(e) = result {
                    let msg = e
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    g.panic.get_or_insert(format!("a{i}: {msg}"));
                    g.abort = true;
                }
                g.actors[i] = ActorState::Done;
                shared.cv.notify_all();
            }));
        }

        let mut trace = PathTrace::default();
        loop {
            let runnable = match shared.wait_quiescent() {
                Ok(r) => r,
                Err(e) => {
                    trace.error = Some(e);
                    shared.abort();
                    let _ = shared.wait_all_done();
                    break;
                }
            };
            // Stamp responses queued since the previous decision.
            {
                let mut g = lock(&shared.state);
                let d = trace.decisions.len().saturating_sub(1);
                for actor in 0..n {
                    while matches!(g.op_events[actor].front(), Some(OpEvent::Respond(_))) {
                        if let Some(OpEvent::Respond(resp)) = g.op_events[actor].pop_front() {
                            trace.events.push(PathEvent::Respond { actor, resp, decision: d });
                        }
                    }
                }
            }
            if runnable.is_empty() {
                break; // all actors done
            }
            let Some(chosen) = pick(&runnable) else {
                trace.aborted = true;
                shared.abort();
                if let Err(e) = shared.wait_all_done() {
                    trace.error = Some(e);
                }
                break;
            };
            assert!(chosen < runnable.len(), "pick returned an out-of-range index");
            let actor = runnable[chosen].actor;
            // Stamp this actor's invocation if the granted access opens an op.
            {
                let mut g = lock(&shared.state);
                if matches!(g.op_events[actor].front(), Some(OpEvent::Invoke(_))) {
                    if let Some(OpEvent::Invoke(op)) = g.op_events[actor].pop_front() {
                        trace.events.push(PathEvent::Invoke {
                            actor,
                            op,
                            decision: trace.decisions.len(),
                        });
                    }
                }
            }
            trace.decisions.push(Decision { runnable: runnable.clone(), chosen });
            shared.grant(actor);
        }
        trace.log = std::mem::take(&mut lock(&shared.state).log);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_word::sync::hook::with_hook;
    use llsc_word::sync::model::AtomicU64;
    use std::sync::atomic::Ordering;

    fn body_incr(cell: Arc<AtomicU64>) -> ActorBody {
        Box::new(move |hook: Arc<ActorHook>| {
            let h: Arc<dyn StepHook> = Arc::clone(&hook) as Arc<dyn StepHook>;
            with_hook(h, || {
                // Deliberately racy read-modify-write as two accesses.
                let v = cell.load(Ordering::SeqCst);
                cell.store(v + 1, Ordering::SeqCst);
            });
        })
    }

    #[test]
    fn serializes_two_actors_round_robin() {
        let ctrl = Controller::new(2);
        let cell = Arc::new(AtomicU64::new(0));
        cell.set_label("C", 0, 0);
        let bodies = vec![body_incr(Arc::clone(&cell)), body_incr(Arc::clone(&cell))];
        let mut turn = 0usize;
        let trace = ctrl.run_path(bodies, &mut |runnable| {
            let c = turn % runnable.len();
            turn += 1;
            Some(c)
        });
        assert!(trace.error.is_none(), "{:?}", trace.error);
        assert!(!trace.aborted);
        assert_eq!(trace.decisions.len(), 4, "2 actors x 2 accesses");
        assert_eq!(trace.log.len(), 4);
        // Alternating grant = the classic lost update: 0 reads 0, 1 reads 0,
        // both store 1.
        assert_eq!(cell.debug_load(), 1, "lost update under the racy schedule");
    }

    #[test]
    fn sequential_grants_preserve_both_updates() {
        let ctrl = Controller::new(2);
        let cell = Arc::new(AtomicU64::new(0));
        let bodies = vec![body_incr(Arc::clone(&cell)), body_incr(Arc::clone(&cell))];
        // Always run the lowest-indexed runnable actor to completion first.
        let trace = ctrl.run_path(bodies, &mut |_| Some(0));
        assert!(trace.error.is_none());
        assert_eq!(cell.debug_load(), 2, "serial schedule keeps both increments");
    }

    #[test]
    fn runnable_sigs_carry_kind_and_label() {
        let ctrl = Controller::new(1);
        let cell = Arc::new(AtomicU64::new(0));
        cell.set_label("X", 7, 0);
        let bodies = vec![body_incr(Arc::clone(&cell))];
        let mut seen: Vec<(AccessKind, Option<&'static str>)> = Vec::new();
        let trace = ctrl.run_path(bodies, &mut |runnable| {
            seen.push((runnable[0].kind, runnable[0].label.map(|l| l.name)));
            Some(0)
        });
        assert!(trace.error.is_none());
        assert_eq!(seen, vec![(AccessKind::Load, Some("X")), (AccessKind::Store, Some("X"))]);
    }

    #[test]
    fn abort_lets_actors_finish_untracked() {
        let ctrl = Controller::new(2);
        let cell = Arc::new(AtomicU64::new(0));
        let bodies = vec![body_incr(Arc::clone(&cell)), body_incr(Arc::clone(&cell))];
        let mut picks = 0usize;
        let trace = ctrl.run_path(bodies, &mut |_| {
            picks += 1;
            if picks > 1 {
                None
            } else {
                Some(0)
            }
        });
        assert!(trace.aborted);
        assert!(trace.error.is_none(), "{:?}", trace.error);
        assert_eq!(trace.decisions.len(), 1, "only the granted access is recorded");
        // Both bodies ran to completion after the abort (value is 1 or 2
        // depending on the untracked interleaving — just must not hang).
        assert!(cell.debug_load() >= 1);
    }

    #[test]
    fn actor_panic_is_reported_not_hung() {
        let ctrl = Controller::new(2);
        let cell = Arc::new(AtomicU64::new(0));
        let panicker: ActorBody = Box::new(move |hook: Arc<ActorHook>| {
            let h: Arc<dyn StepHook> = Arc::clone(&hook) as Arc<dyn StepHook>;
            with_hook(h, || {
                panic!("scenario bug");
            });
        });
        let bodies = vec![panicker, body_incr(Arc::clone(&cell))];
        let trace = ctrl.run_path(bodies, &mut |_| Some(0));
        let err = trace.error.expect("panic must surface as a path error");
        assert!(err.contains("scenario bug"), "{err}");
    }

    #[test]
    fn op_events_are_stamped_with_decisions() {
        let ctrl = Controller::new(1);
        let cell = Arc::new(AtomicU64::new(5));
        let body: ActorBody = Box::new(move |hook: Arc<ActorHook>| {
            let h: Arc<dyn StepHook> = Arc::clone(&hook) as Arc<dyn StepHook>;
            let hook2 = Arc::clone(&hook);
            with_hook(h, || {
                hook2.note_invoke(OpDesc::Ll);
                let v = cell.load(Ordering::SeqCst);
                hook2.note_respond(RespDesc::Ll(vec![v]));
            });
        });
        let trace = ctrl.run_path(vec![body], &mut |_| Some(0));
        assert!(trace.error.is_none());
        assert_eq!(
            trace.events,
            vec![
                PathEvent::Invoke { actor: 0, op: OpDesc::Ll, decision: 0 },
                PathEvent::Respond { actor: 0, resp: RespDesc::Ll(vec![5]), decision: 0 },
            ]
        );
    }

    #[test]
    fn pool_is_reused_across_paths() {
        let ctrl = Controller::new(2);
        for round in 0..25u64 {
            let cell = Arc::new(AtomicU64::new(round));
            let bodies = vec![body_incr(Arc::clone(&cell)), body_incr(Arc::clone(&cell))];
            let trace = ctrl.run_path(bodies, &mut |_| Some(0));
            assert!(trace.error.is_none(), "round {round}: {:?}", trace.error);
            assert_eq!(cell.debug_load(), round + 2);
        }
    }
}
