//! Sequential model-based testing of the multiword object.
//!
//! Random sequences of LL/SC/VL/Read by several processes are executed
//! *serially* (one operation at a time, processes interleaved arbitrarily)
//! against both the real object and the Figure 1 sequential specification.
//! Serial execution makes the expected outcome deterministic while still
//! driving the object through its full internal machinery: sequence-number
//! wrap-around, Bank fix-ups, buffer rotation, and ownership bookkeeping.

use mwllsc::{Handle, LlStrategy, MwLlSc};
use proptest::prelude::*;

/// Figure 1 reference model of an N-process W-word LL/SC/VL object.
#[derive(Clone, Debug)]
struct SpecMw {
    value: Vec<u64>,
    valid: Vec<bool>,
}

impl SpecMw {
    fn new(n: usize, init: &[u64]) -> Self {
        Self { value: init.to_vec(), valid: vec![false; n] }
    }

    fn ll(&mut self, p: usize) -> Vec<u64> {
        self.valid[p] = true;
        self.value.clone()
    }

    fn sc(&mut self, p: usize, v: &[u64]) -> bool {
        if self.valid[p] {
            self.value = v.to_vec();
            self.valid.iter_mut().for_each(|b| *b = false);
            true
        } else {
            false
        }
    }

    fn vl(&self, p: usize) -> bool {
        self.valid[p]
    }
}

#[derive(Clone, Debug)]
enum Op {
    Ll(usize),
    /// SC writing a value derived from the op index (deterministic).
    Sc(usize, u64),
    Vl(usize),
    Read(usize),
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n).prop_map(Op::Ll),
        ((0..n), any::<u64>()).prop_map(|(p, seed)| Op::Sc(p, seed)),
        (0..n).prop_map(Op::Vl),
        (0..n).prop_map(Op::Read),
    ]
}

fn run_model_sequence(n: usize, w: usize, strategy: LlStrategy, ops: &[Op]) {
    let init: Vec<u64> = (0..w as u64).map(|i| i * 7 + 1).collect();
    let obj = MwLlSc::try_with_strategy(n, w, &init, strategy).unwrap();
    let mut handles: Vec<Handle> = obj.handles();
    let mut model = SpecMw::new(n, &init);
    // Track whether each process has LL'd at least once (API precondition).
    let mut linked = vec![false; n];

    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Ll(p) => {
                let got = handles[p].ll_vec();
                let want = model.ll(p);
                linked[p] = true;
                assert_eq!(got, want, "op {i}: LL({p})");
            }
            Op::Sc(p, seed) => {
                if !linked[p] {
                    continue;
                }
                let v: Vec<u64> = (0..w as u64).map(|j| seed.wrapping_add(j * 13)).collect();
                let got = handles[p].sc(&v);
                let want = model.sc(p, &v);
                assert_eq!(got, want, "op {i}: SC({p})");
            }
            Op::Vl(p) => {
                if !linked[p] {
                    continue;
                }
                assert_eq!(handles[p].vl(), model.vl(p), "op {i}: VL({p})");
            }
            Op::Read(p) => {
                let mut out = vec![0u64; w];
                handles[p].read(&mut out);
                assert_eq!(out, model.value, "op {i}: Read({p})");
                // Read must not affect the link; the next Vl/Sc op in the
                // sequence will detect any disturbance against the model.
                if linked[p] {
                    assert_eq!(handles[p].vl(), model.vl(p), "op {i}: Read({p}) broke link");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn waitfree_matches_spec_n3_w2(ops in prop::collection::vec(op_strategy(3), 1..250)) {
        run_model_sequence(3, 2, LlStrategy::WaitFree, &ops);
    }

    #[test]
    fn waitfree_matches_spec_n1_w4(ops in prop::collection::vec(op_strategy(1), 1..250)) {
        run_model_sequence(1, 4, LlStrategy::WaitFree, &ops);
    }

    #[test]
    fn waitfree_matches_spec_n8_w1(ops in prop::collection::vec(op_strategy(8), 1..250)) {
        run_model_sequence(8, 1, LlStrategy::WaitFree, &ops);
    }

    #[test]
    fn retry_loop_matches_spec_n3_w2(ops in prop::collection::vec(op_strategy(3), 1..250)) {
        run_model_sequence(3, 2, LlStrategy::RetryLoop, &ops);
    }
}

#[test]
fn seq_wraparound_many_times_n2() {
    // 2N = 4: thousands of successful SCs cycle the sequence space and the
    // Bank repeatedly; values must stay exact throughout.
    let obj = MwLlSc::new(2, 2, &[0, 0]);
    let mut hs = obj.handles();
    let (left, right) = hs.split_at_mut(1);
    let h0 = &mut left[0];
    let h1 = &mut right[0];
    let mut v = [0u64; 2];
    for i in 0..10_000u64 {
        let h = if i % 3 == 0 { &mut *h0 } else { &mut *h1 };
        h.ll(&mut v);
        assert_eq!(v[0], i, "iteration {i}");
        assert_eq!(v[1], i.wrapping_mul(31), "iteration {i}");
        assert!(h.sc(&[i + 1, (i + 1).wrapping_mul(31)]));
    }
}

#[test]
fn interleaved_links_across_processes() {
    // All processes LL the same value, then SC in turn: exactly the first
    // SC wins each round; the spec model confirms.
    let n = 5;
    let obj = MwLlSc::new(n, 3, &[9, 9, 9]);
    let mut handles = obj.handles();
    let mut cur = vec![9u64, 9, 9];
    for round in 0..200u64 {
        for h in handles.iter_mut() {
            assert_eq!(h.ll_vec(), cur, "round {round}");
        }
        let mut winner_seen = false;
        for (p, h) in handles.iter_mut().enumerate() {
            let proposal = vec![round, p as u64, round * 1000 + p as u64];
            let ok = h.sc(&proposal);
            if ok {
                assert!(!winner_seen, "two SCs succeeded in one round {round}");
                winner_seen = true;
                cur = proposal;
            }
        }
        assert!(winner_seen, "someone must win round {round}");
    }
}
