//! `Atomic<T>`: a typed multiword atomic cell with LL/SC and
//! read-modify-write operations.
//!
//! This is the "any read-modify-write in three instructions" usage pattern
//! from the paper's introduction, lifted to whole Rust values: `LL`,
//! modify in a register (here: a closure), `SC`, retry on interference.
//!
//! [`AtomicHandle`] is generic over the [`MwHandle`] capability, so the
//! same typed cell logic runs over the paper's algorithm (the default) or
//! any comparator from `llsc-baselines` — see
//! [`AtomicHandle::from_raw`].

use std::sync::Arc;

use mwllsc::{AttachError, MwHandle, MwLlSc};

use crate::codec::WordCodec;

/// A shared value of type `T` with atomic multiword LL/SC/VL semantics,
/// backed by the paper's algorithm.
///
/// Construction fixes the number of process slots; each process interacts
/// through its own [`AtomicHandle`], leased with [`claim`](Self::claim) /
/// [`handles`](Self::handles) (pinned ids) or [`attach`](Self::attach)
/// (any free slot; dropping the handle frees it again). To run the typed
/// cell over a *different* LL/SC implementation, build that object
/// directly and wrap its handles with [`AtomicHandle::from_raw`].
///
/// # Examples
///
/// ```
/// use mwllsc_apps::Atomic;
///
/// let cell = Atomic::<u128>::new(2, 1u128 << 80);
/// let mut handles = cell.handles();
/// let v = handles[0].load();
/// assert_eq!(v, 1u128 << 80);
/// handles[0].fetch_update(|x| x + 1);
/// assert_eq!(handles[1].load(), (1u128 << 80) + 1);
/// ```
pub struct Atomic<T: WordCodec> {
    obj: Arc<MwLlSc>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: WordCodec> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Atomic")
            .field("words", &T::WORDS)
            .field("processes", &self.obj.processes())
            .finish()
    }
}

impl<T: WordCodec> Atomic<T> {
    /// Creates the cell for `n` processes, holding `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `T::WORDS == 0`.
    #[must_use]
    pub fn new(n: usize, initial: T) -> Arc<Self> {
        let mut words = vec![0u64; T::WORDS];
        initial.encode(&mut words);
        Arc::new(Self { obj: MwLlSc::new(n, T::WORDS, &words), _marker: std::marker::PhantomData })
    }

    /// Leases the handle for the specific process id `p`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id or one leased by a live handle.
    #[must_use]
    pub fn claim(self: &Arc<Self>, p: usize) -> AtomicHandle<T> {
        let inner = self.obj.claim(p).unwrap_or_else(|e| panic!("Atomic::claim: {e}"));
        AtomicHandle::from_raw(inner)
    }

    /// Leases a handle for any free slot; dropping it frees the slot.
    ///
    /// # Errors
    ///
    /// [`AttachError::Exhausted`] when all `n` slots are leased.
    ///
    /// # Examples
    ///
    /// ```
    /// use mwllsc_apps::Atomic;
    ///
    /// let cell = Atomic::<u64>::new(1, 9);
    /// let h = cell.attach().unwrap();
    /// assert!(cell.attach().is_err(), "single slot is leased");
    /// drop(h);
    /// assert_eq!(cell.attach().unwrap().load(), 9);
    /// ```
    pub fn attach(self: &Arc<Self>) -> Result<AtomicHandle<T>, AttachError> {
        Ok(AtomicHandle::from_raw(self.obj.attach()?))
    }

    /// All `N` handles, in process order.
    #[must_use]
    pub fn handles(self: &Arc<Self>) -> Vec<AtomicHandle<T>> {
        (0..self.obj.processes()).map(|p| self.claim(p)).collect()
    }

    /// The underlying untyped object (for space accounting etc.).
    #[must_use]
    pub fn raw(&self) -> &Arc<MwLlSc> {
        &self.obj
    }
}

/// Process-local handle to a typed multiword atomic cell.
///
/// Generic over the backing [`MwHandle`]; defaults to the paper's
/// [`mwllsc::Handle`].
pub struct AtomicHandle<T: WordCodec, H: MwHandle = mwllsc::Handle> {
    inner: H,
    scratch: Vec<u64>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: WordCodec, H: MwHandle> std::fmt::Debug for AtomicHandle<T, H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHandle").field("inner", &self.inner).finish()
    }
}

impl<T: WordCodec, H: MwHandle> AtomicHandle<T, H> {
    /// Wraps any [`MwHandle`] whose object is `T::WORDS` wide as a typed
    /// handle — the portability point of the apps layer.
    ///
    /// # Panics
    ///
    /// Panics if `inner.width() != T::WORDS`.
    ///
    /// # Examples
    ///
    /// ```
    /// use llsc_baselines::{build, Algo};
    /// use mwllsc_apps::AtomicHandle;
    ///
    /// // The same typed cell, over the seqlock comparator:
    /// let (mut handles, _) = build(Algo::SeqLock, 2, 2, &[7, 0]);
    /// let mut h = AtomicHandle::<u128, _>::from_raw(handles.remove(0));
    /// assert_eq!(h.load(), 7);
    /// h.fetch_update(|x| x * 3);
    /// assert_eq!(h.load(), 21);
    /// ```
    #[must_use]
    pub fn from_raw(inner: H) -> Self {
        assert_eq!(
            inner.width(),
            T::WORDS,
            "AtomicHandle: object width must equal the codec width"
        );
        Self { inner, scratch: vec![0u64; T::WORDS], _marker: std::marker::PhantomData }
    }

    /// Load-linked: returns the current value and links for [`sc`](Self::sc)
    /// / [`vl`](Self::vl). Wait-free on the default backend.
    pub fn ll(&mut self) -> T {
        self.inner.ll(&mut self.scratch);
        T::decode(&self.scratch)
    }

    /// Store-conditional. Wait-free on the default backend.
    pub fn sc(&mut self, value: &T) -> bool {
        value.encode(&mut self.scratch);
        self.inner.sc(&self.scratch)
    }

    /// Validate. Wait-free, `O(1)` on the default backend.
    pub fn vl(&mut self) -> bool {
        self.inner.vl()
    }

    /// Reads the current value without linking. Wait-free on the default
    /// backend.
    pub fn load(&mut self) -> T {
        self.inner.read(&mut self.scratch);
        T::decode(&self.scratch)
    }

    /// Atomically replaces the value with `f(current)`, retrying on
    /// interference, and returns the value `f` was finally applied to.
    ///
    /// Lock-free (each retry means another process's SC succeeded — i.e.
    /// system-wide progress), not wait-free: an individual caller can be
    /// overtaken indefinitely. This matches the progress of hardware-CAS
    /// `fetch_update`; per-operation wait-freedom for arbitrary RMW
    /// requires operation-level helping — see the
    /// [`universal`](crate::universal) module.
    pub fn fetch_update(&mut self, mut f: impl FnMut(T) -> T) -> T {
        loop {
            let cur = self.ll();
            let next = f(cur);
            if self.sc(&next) {
                return next;
            }
        }
    }

    /// Atomically stores `value` regardless of interference (a retry loop
    /// of LL/SC; lock-free).
    pub fn store(&mut self, value: &T) {
        loop {
            let _ = self.ll();
            if self.sc(value) {
                return;
            }
        }
    }

    /// Atomically swaps in `value`, returning the previous value
    /// (lock-free).
    pub fn swap(&mut self, value: &T) -> T {
        loop {
            let prev = self.ll();
            if self.sc(value) {
                return prev;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_swap() {
        let cell = Atomic::<(u64, u64)>::new(1, (1, 2));
        let mut h = cell.claim(0);
        assert_eq!(h.load(), (1, 2));
        h.store(&(3, 4));
        assert_eq!(h.load(), (3, 4));
        assert_eq!(h.swap(&(5, 6)), (3, 4));
        assert_eq!(h.load(), (5, 6));
    }

    #[test]
    fn ll_sc_vl_typed() {
        let cell = Atomic::<u128>::new(2, 10);
        let mut hs = cell.handles();
        let v = hs[0].ll();
        assert_eq!(v, 10);
        assert!(hs[0].vl());
        assert!(hs[0].sc(&(v + 1)));
        let v1 = hs[1].ll();
        assert_eq!(v1, 11);
        let _ = hs[0].ll();
        assert!(hs[0].sc(&100));
        assert!(!hs[1].vl());
        assert!(!hs[1].sc(&999));
        assert_eq!(hs[1].load(), 100);
    }

    #[test]
    fn fetch_update_returns_installed_value() {
        let cell = Atomic::<u64>::new(1, 7);
        let mut h = cell.claim(0);
        let installed = h.fetch_update(|x| x * 3);
        assert_eq!(installed, 21);
        assert_eq!(h.load(), 21);
    }

    #[test]
    fn attach_churn_reuses_slots() {
        let cell = Atomic::<u64>::new(2, 0);
        for i in 0..50 {
            let mut h = cell.attach().expect("slot free after previous drop");
            assert_eq!(h.fetch_update(|x| x + 1), i + 1);
        }
        assert_eq!(cell.raw().live_leases(), 0);
    }

    #[test]
    #[should_panic(expected = "width must equal")]
    fn from_raw_checks_width() {
        let obj = mwllsc::MwLlSc::new(1, 3, &[0, 0, 0]);
        let _ = AtomicHandle::<u128, _>::from_raw(obj.claim(0).unwrap());
    }

    #[test]
    fn concurrent_u128_counter_exact() {
        const THREADS: usize = 4;
        const PER: u64 = 10_000;
        let cell = Atomic::<u128>::new(THREADS, 0);
        let mut handles = cell.handles();
        let mut h0 = handles.remove(0);
        let mut joins = Vec::new();
        for mut h in handles {
            joins.push(std::thread::spawn(move || {
                for _ in 0..PER {
                    // Add a quantity that spans both words.
                    h.fetch_update(|x| x + (1u128 << 63));
                }
            }));
        }
        for _ in 0..PER {
            h0.fetch_update(|x| x + (1u128 << 63));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h0.load(), u128::from(THREADS as u64 * PER) << 63);
    }
}
