//! Server protocol hot path: encode/decode cost per frame, the per-byte
//! tax the network layer adds on top of the store operations it carries.
//!
//! The harness (`mwllsc-harness e13-server`) measures end-to-end
//! requests/sec over loopback; this bench isolates the codec so a
//! framing regression (extra copies, per-word bounds checks going
//! quadratic) is visible independent of socket behavior.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mwllsc_server::proto::{
    decode_request, decode_response, encode_request, encode_response, Decoded,
};
use mwllsc_server::{Request, Response, UpdateOp};

const W: usize = 4;

fn requests() -> Vec<(&'static str, Request)> {
    vec![
        ("get", Request::Get { key: 42 }),
        ("update_add", Request::Update { key: 42, op: UpdateOp::Add(vec![1; W]) }),
        ("mget_32", Request::MGet { keys: (0..32).collect() }),
        ("mset_32", Request::MSet { pairs: (0..32).map(|k| (k, vec![k; W])).collect() }),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_proto_encode");
    for (name, req) in requests() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &req, |b, req| {
            let mut buf = Vec::with_capacity(4096);
            b.iter(|| {
                buf.clear();
                encode_request(black_box(req), &mut buf);
                black_box(buf.len());
            });
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_proto_decode");
    for (name, req) in requests() {
        let mut wire = Vec::new();
        encode_request(&req, &mut wire);
        group.throughput(Throughput::Bytes(wire.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &wire, |b, wire| {
            b.iter(|| match decode_request(black_box(wire)).expect("well-formed") {
                Decoded::Frame(req, consumed) => {
                    black_box((req, consumed));
                }
                Decoded::NeedMore => unreachable!("complete frame"),
            });
        });
    }
    group.finish();
}

fn bench_response_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_proto_response");
    let resp = Response::Values((0..32).map(|k| vec![k; W]).collect());
    let mut wire = Vec::new();
    encode_response(&resp, &mut wire);
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("encode_values_32", |b| {
        let mut buf = Vec::with_capacity(wire.len());
        b.iter(|| {
            buf.clear();
            encode_response(black_box(&resp), &mut buf);
            black_box(buf.len());
        });
    });
    group.bench_function("decode_values_32", |b| {
        b.iter(|| match decode_response(black_box(&wire)).expect("well-formed") {
            Decoded::Frame(resp, consumed) => {
                black_box((resp, consumed));
            }
            Decoded::NeedMore => unreachable!("complete frame"),
        });
    });
    // A deep pipelined stream: the decoder must split 64 back-to-back
    // frames without rescanning earlier bytes.
    let mut stream = Vec::new();
    for k in 0..64u64 {
        encode_request(&Request::Update { key: k % 4, op: UpdateOp::Add(vec![1; W]) }, &mut stream);
    }
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.bench_function("decode_pipeline_64", |b| {
        b.iter(|| {
            let mut at = 0;
            let mut n = 0u32;
            while let Decoded::Frame(req, consumed) =
                decode_request(black_box(&stream[at..])).expect("well-formed")
            {
                black_box(req);
                at += consumed;
                n += 1;
                if at == stream.len() {
                    break;
                }
            }
            assert_eq!(n, 64);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_response_roundtrip);
criterion_main!(benches);
