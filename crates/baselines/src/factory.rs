//! Uniform construction of every implementation behind `dyn` handles, for
//! the harness and benchmarks.

use mwllsc::{ConfigError, LlStrategy, MwFactory, MwLlSc, PaperBackend, PaperRetryBackend};
use mwllsc_store::{DynStore, Store, StoreConfig, StoreError};

use crate::am_style::{AmStyleBackend, AmStyleLlSc};
use crate::lock::{LockBackend, LockLlSc};
use crate::ptrswap::{PtrSwapBackend, PtrSwapLlSc};
use crate::seqlock::{SeqLockBackend, SeqLockLlSc};
use crate::traits::{MwHandle, Progress, SpaceEstimate};

/// Every multiword LL/SC implementation in the suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// The paper's algorithm (Jayanti–Petrovic, wait-free LL).
    Jp,
    /// The paper's algorithm with the retry-loop LL ablation (lock-free).
    JpRetry,
    /// The AM-style `Θ(N²W)` wait-free reconstruction.
    AmStyle,
    /// Mutex-protected value (blocking).
    Lock,
    /// Seqlock (lock-free readers, crash-fragile writers).
    SeqLock,
    /// Epoch pointer swap (wait-free ops, GC-reliant space).
    PtrSwap,
}

impl Algo {
    /// All algorithms, in comparison-table order.
    pub const ALL: [Algo; 6] =
        [Algo::Jp, Algo::AmStyle, Algo::PtrSwap, Algo::SeqLock, Algo::Lock, Algo::JpRetry];

    /// Short display name used in table rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algo::Jp => "jp-waitfree",
            Algo::JpRetry => "jp-retry-ll",
            Algo::AmStyle => "am-style",
            Algo::Lock => "lock",
            Algo::SeqLock => "seqlock",
            Algo::PtrSwap => "ptr-swap",
        }
    }

    /// Progress guarantee.
    #[must_use]
    pub fn progress(self) -> Progress {
        match self {
            Algo::Jp | Algo::AmStyle | Algo::PtrSwap => Progress::WaitFree,
            Algo::JpRetry | Algo::SeqLock => Progress::LockFree,
            Algo::Lock => Progress::Blocking,
        }
    }
}

impl std::str::FromStr for Algo {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Algo::ALL
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| format!("unknown algorithm {s:?}"))
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds an instance of `algo` and returns one boxed handle per process
/// plus the exact space accounting.
///
/// # Panics
///
/// Panics on invalid `(n, w, initial)`; [`try_build`] reports the same
/// conditions as errors instead.
#[must_use]
pub fn build(
    algo: Algo,
    n: usize,
    w: usize,
    initial: &[u64],
) -> (Vec<Box<dyn MwHandle>>, SpaceEstimate) {
    try_build(algo, n, w, initial).unwrap_or_else(|e| panic!("build({algo}): {e}"))
}

/// [`build`], reporting invalid configurations as errors instead of
/// panicking — the harness CLI routes through this for clean messages.
///
/// # Errors
///
/// [`ConfigError`] for a zero `n` or `w`, an `initial` slice whose length
/// differs from `w`, or (for the tagged-substrate algorithms) an `n` past
/// [`mwllsc::layout::Layout::MAX_PROCESSES`].
///
/// # Examples
///
/// ```
/// use llsc_baselines::{try_build, Algo};
///
/// assert!(try_build(Algo::Jp, 2, 2, &[1, 2]).is_ok());
/// let err = try_build(Algo::Lock, 2, 2, &[1]).unwrap_err();
/// assert!(err.to_string().contains("expected W = 2"));
/// ```
pub fn try_build(
    algo: Algo,
    n: usize,
    w: usize,
    initial: &[u64],
) -> Result<(Vec<Box<dyn MwHandle>>, SpaceEstimate), ConfigError> {
    // Validate the shared construction rules up front so the baseline
    // constructors (which assert) are only reached with clean inputs.
    // Each algorithm's own ceiling applies: 2^22 for the tagged paper
    // layouts, 2^15 for AM-style's packed X record, none for the O(W)
    // baselines.
    let max = match algo {
        Algo::Jp | Algo::JpRetry => mwllsc::layout::Layout::MAX_PROCESSES,
        Algo::AmStyle => AmStyleBackend::max_processes(),
        Algo::Lock | Algo::SeqLock | Algo::PtrSwap => usize::MAX,
    };
    ConfigError::validate(n, w, initial, max)?;
    Ok(match algo {
        Algo::Jp => {
            let obj = MwLlSc::new(n, w, initial);
            let space = obj.space();
            let handles =
                obj.handles().into_iter().map(|h| Box::new(h) as Box<dyn MwHandle>).collect();
            (
                handles,
                SpaceEstimate {
                    shared_words: space.shared_words(),
                    retired_words: 0,
                    asymptotic: "O(NW)",
                },
            )
        }
        Algo::JpRetry => {
            let obj = MwLlSc::try_with_strategy(n, w, initial, LlStrategy::RetryLoop)
                .expect("valid configuration");
            let space = obj.space();
            let handles =
                obj.handles().into_iter().map(|h| Box::new(h) as Box<dyn MwHandle>).collect();
            (
                handles,
                SpaceEstimate {
                    shared_words: space.shared_words(),
                    retired_words: 0,
                    asymptotic: "O(NW)",
                },
            )
        }
        Algo::AmStyle => {
            let obj = AmStyleLlSc::new(n, w, initial);
            let space = obj.space();
            let handles =
                obj.handles().into_iter().map(|h| Box::new(h) as Box<dyn MwHandle>).collect();
            (handles, space)
        }
        Algo::Lock => {
            let obj = LockLlSc::new(n, w, initial);
            let space = obj.space();
            let handles =
                obj.handles().into_iter().map(|h| Box::new(h) as Box<dyn MwHandle>).collect();
            (handles, space)
        }
        Algo::SeqLock => {
            let obj = SeqLockLlSc::new(n, w, initial);
            let space = obj.space();
            let handles =
                obj.handles().into_iter().map(|h| Box::new(h) as Box<dyn MwHandle>).collect();
            (handles, space)
        }
        Algo::PtrSwap => {
            let obj = PtrSwapLlSc::new(n, w, initial);
            let space = obj.space();
            let handles =
                obj.handles().into_iter().map(|h| Box::new(h) as Box<dyn MwHandle>).collect();
            (handles, space)
        }
    })
}

/// Builds a sharded [`Store`](mwllsc_store::Store) whose shards
/// materialize `algo`-backed objects, type-erased behind
/// [`DynStore`] — the runtime companion of the compile-time
/// `Store::<B>::try_new_in` path, for the harness CLI and
/// configuration-driven services.
///
/// # Errors
///
/// The same [`StoreError`] matrix as `Store::try_new_in`, with
/// `ShardCapacityTooLarge` judged against the *backend's* per-object
/// ceiling (`Layout::MAX_PROCESSES` for the paper variants, `2^15` for
/// AM-style, unbounded for the `O(W)` baselines).
///
/// # Examples
///
/// ```
/// use llsc_baselines::{try_build_store, Algo};
/// use mwllsc_store::StoreConfig;
///
/// let store = try_build_store(Algo::Lock, StoreConfig::new(4, 2, 1, 1 << 20)).unwrap();
/// let mut h = store.attach_dyn();
/// let mut buf = [0u64; 1];
/// h.update_with_dyn(7, &mut buf, &mut |v| v[0] += 1).unwrap();
/// assert_eq!(h.read_vec(7).unwrap(), vec![1]);
/// assert_eq!(store.backend(), "lock");
/// ```
pub fn try_build_store(algo: Algo, config: StoreConfig) -> Result<Box<dyn DynStore>, StoreError> {
    Ok(match algo {
        Algo::Jp => Box::new(Store::<PaperBackend>::try_new_in(config)?),
        Algo::JpRetry => Box::new(Store::<PaperRetryBackend>::try_new_in(config)?),
        Algo::AmStyle => Box::new(Store::<AmStyleBackend>::try_new_in(config)?),
        Algo::Lock => Box::new(Store::<LockBackend>::try_new_in(config)?),
        Algo::SeqLock => Box::new(Store::<SeqLockBackend>::try_new_in(config)?),
        Algo::PtrSwap => Box::new(Store::<PtrSwapBackend>::try_new_in(config)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algo_builds_and_operates() {
        for algo in Algo::ALL {
            let (mut handles, space) = build(algo, 3, 2, &[10, 20]);
            assert_eq!(handles.len(), 3);
            assert!(space.shared_words >= 2, "{algo}: {}", space.shared_words);
            let mut v = [0u64; 2];
            handles[0].ll(&mut v);
            assert_eq!(v, [10, 20], "{algo}");
            assert!(handles[0].sc(&[1, 2]), "{algo}");
            handles[1].ll(&mut v);
            assert_eq!(v, [1, 2], "{algo}");
            assert!(handles[1].vl(), "{algo}");
            handles[2].ll(&mut v);
            assert!(handles[2].sc(&[3, 4]), "{algo}");
            assert!(!handles[1].vl(), "{algo}");
            assert!(!handles[1].sc(&[9, 9]), "{algo}");
        }
    }

    #[test]
    fn space_ordering_matches_theory() {
        let n = 16;
        let w = 8;
        let init = vec![0u64; w];
        let jp = build(Algo::Jp, n, w, &init).1.shared_words;
        let am = build(Algo::AmStyle, n, w, &init).1.shared_words;
        let lock = build(Algo::Lock, n, w, &init).1.shared_words;
        assert!(lock < jp, "lock ({lock}) should be smallest");
        assert!(jp < am, "jp ({jp}) must beat am-style ({am})");
        // The headline: the gap is a factor of ~N.
        let ratio = am as f64 / jp as f64;
        assert!(ratio > n as f64 / 4.0, "ratio {ratio} too small for N={n}");
    }

    #[test]
    fn try_build_rejects_bad_configurations() {
        use mwllsc::ConfigError;
        for algo in Algo::ALL {
            assert_eq!(try_build(algo, 0, 1, &[0]).unwrap_err(), ConfigError::ZeroProcesses);
            assert_eq!(try_build(algo, 1, 0, &[]).unwrap_err(), ConfigError::ZeroWords);
            assert_eq!(
                try_build(algo, 1, 2, &[0]).unwrap_err(),
                ConfigError::WrongInitLen { expected: 2, got: 1 }
            );
        }
        assert_eq!(
            try_build(Algo::Jp, mwllsc::layout::Layout::MAX_PROCESSES + 1, 1, &[0]).unwrap_err(),
            ConfigError::TooManyProcesses
        );
        // AM-style's own ceiling (2^15, the packed X record) applies — a
        // typed error, not the constructor's bit-packing assert.
        assert_eq!(
            try_build(Algo::AmStyle, (1 << 15) + 1, 1, &[0]).unwrap_err(),
            ConfigError::TooManyProcesses
        );
    }

    #[test]
    fn try_build_store_serves_every_algo() {
        for algo in Algo::ALL {
            let store = try_build_store(algo, StoreConfig::new(4, 2, 2, 1 << 20))
                .unwrap_or_else(|e| panic!("{algo}: {e}"));
            let mut h = store.attach_dyn();
            let mut buf = [0u64; 2];
            h.update_with_dyn(123, &mut buf, &mut |v| v[0] += 1).unwrap();
            h.update_many_dyn(&[123, 456], &mut |_, v| v[1] += 1).unwrap();
            assert_eq!(h.read_vec(123).unwrap(), vec![1, 1], "{algo}");
            let space = store.space();
            assert_eq!(space.touched_keys, 2, "{algo}");
            assert_eq!(space.shared_words, 2 * space.per_key_shared_words, "{algo}");
        }
    }

    #[test]
    fn store_capacity_is_judged_against_the_backends_own_ceiling() {
        // The paper's tagged layout caps per-object processes at 2^22…
        let too_big = mwllsc::layout::Layout::MAX_PROCESSES + 1;
        assert!(matches!(
            try_build_store(Algo::Jp, StoreConfig::new(1, too_big, 1, 10)).unwrap_err(),
            StoreError::ShardCapacityTooLarge { .. }
        ));
        // …while AM-style's packed X record caps out at 2^15.
        assert_eq!(
            try_build_store(Algo::AmStyle, StoreConfig::new(1, (1 << 15) + 1, 1, 10)).unwrap_err(),
            StoreError::ShardCapacityTooLarge { capacity: (1 << 15) + 1, max: 1 << 15 }
        );
        assert!(try_build_store(Algo::Jp, StoreConfig::new(1, 1 << 15, 1, 10)).is_ok());
    }

    #[test]
    fn algo_parse_roundtrip() {
        for algo in Algo::ALL {
            assert_eq!(algo.name().parse::<Algo>().unwrap(), algo);
        }
        assert!("nope".parse::<Algo>().is_err());
    }
}
