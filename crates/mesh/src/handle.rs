//! [`MeshHandle`]: the caller's typed-error surface over the mesh —
//! the same get/set/update/read_many shape as
//! [`StoreHandle`](mwllsc_store::StoreHandle), with one deliberate
//! difference: updates are *declarative* ([`UpdateKind`] + operand)
//! because closures cannot cross the rings.
//!
//! Every op is synchronous: the handle scatters entries to the owning
//! workers' request rings (packing up to `BATCH_SPAN` consecutive
//! same-owner entries into one slot), keeps at most `ring_capacity`
//! entries in flight per link (the sliding window that makes both rings
//! overflow-free), and gathers replies — parking briefly on the shared
//! waiter when there is nothing to push or pop. A handle is therefore
//! single-threaded by construction (`&mut self` everywhere), exactly
//! like `StoreHandle`.

use std::sync::Arc;
use std::time::Duration;

use mwllsc::sync::Ordering;
use mwllsc::{MwFactory, PaperBackend};

use crate::link::{CallerLink, Waiter};
use crate::mesh::Mesh;
use crate::msg::{InlineVal, MeshError, Op, UpdateKind, BATCH_SPAN};

/// Bound on one park while waiting for replies. Wakeups normally arrive
/// via unpark; the timeout only bounds the cost of a lost race.
const PARK_TIMEOUT: Duration = Duration::from_micros(100);

/// A caller's connection to a [`Mesh`]: one ring pair per worker plus
/// the scratch to scatter/gather batches. See the module docs.
pub struct MeshHandle<B: MwFactory = PaperBackend> {
    mesh: Arc<Mesh<B>>,
    links: Box<[CallerLink]>,
    waiter: Arc<Waiter>,
    /// Per-entry owner worker, filled by validation.
    owners: Vec<u32>,
    /// Per-entry `(kind, operand)` for the current write batch.
    ops: Vec<(UpdateKind, InlineVal)>,
    /// Per-worker "pushed this round, wake it" flags.
    woke: Vec<bool>,
}

impl<B: MwFactory> MeshHandle<B> {
    pub(crate) fn new(mesh: Arc<Mesh<B>>, links: Box<[CallerLink]>, waiter: Arc<Waiter>) -> Self {
        let workers = links.len();
        Self {
            mesh,
            links,
            waiter,
            owners: Vec::new(),
            ops: Vec::new(),
            woke: vec![false; workers],
        }
    }

    /// Words per logical variable, `W`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.mesh.width()
    }

    /// Size of the logical key space.
    #[must_use]
    pub fn key_capacity(&self) -> u64 {
        self.mesh.key_capacity()
    }

    /// The mesh this handle talks to.
    #[must_use]
    pub fn mesh(&self) -> &Arc<Mesh<B>> {
        &self.mesh
    }

    /// Reads the current value of `key` into `out`.
    pub fn read(&mut self, key: u64, out: &mut [u64]) -> Result<(), MeshError> {
        self.read_many_into(&[key], out)
    }

    /// Reads `key` into a fresh `Vec`.
    pub fn read_vec(&mut self, key: u64) -> Result<Vec<u64>, MeshError> {
        let mut out = vec![0u64; self.width()];
        self.read(key, &mut out)?;
        Ok(out)
    }

    /// Reads many keys, returning values in the order of `keys`.
    pub fn read_many(&mut self, keys: &[u64]) -> Result<Vec<Vec<u64>>, MeshError> {
        let w = self.width();
        let mut flat = vec![0u64; keys.len() * w];
        self.read_many_into(keys, &mut flat)?;
        Ok(flat.chunks(w.max(1)).map(<[u64]>::to_vec).collect())
    }

    /// Reads many keys into one flat `keys.len() × W` buffer.
    pub fn read_many_into(&mut self, keys: &[u64], out: &mut [u64]) -> Result<(), MeshError> {
        let w = self.width();
        if out.len() != keys.len() * w {
            return Err(MeshError::WrongValueLen { expected: keys.len() * w, got: out.len() });
        }
        self.route_batch(keys)?;
        self.pump(keys, false, Some(out))
    }

    /// Overwrites `key` with `value`.
    pub fn set(&mut self, key: u64, value: &[u64]) -> Result<(), MeshError> {
        self.update(key, UpdateKind::Set, value).map(|_| ())
    }

    /// Applies one declarative update to `key`, returning the installed
    /// value (the closure-based `StoreHandle::update_with` has no mesh
    /// equivalent: closures cannot cross the rings).
    pub fn update(
        &mut self,
        key: u64,
        kind: UpdateKind,
        operand: &[u64],
    ) -> Result<Vec<u64>, MeshError> {
        let mut out = vec![0u64; self.width()];
        self.update_into(key, kind, operand, &mut out)?;
        Ok(out)
    }

    /// [`MeshHandle::update`] into a caller buffer.
    pub fn update_into(
        &mut self,
        key: u64,
        kind: UpdateKind,
        operand: &[u64],
        out: &mut [u64],
    ) -> Result<(), MeshError> {
        let w = self.width();
        if out.len() != w {
            return Err(MeshError::WrongValueLen { expected: w, got: out.len() });
        }
        let val = Self::inline(operand, w)?;
        self.ops.clear();
        self.ops.push((kind, val));
        self.route_batch(&[key])?;
        self.pump(&[key], true, Some(out))
    }

    /// Applies one declarative update per key — `op(i)` supplies entry
    /// `i`'s kind and operand — and, when `snaps` is given, writes each
    /// entry's installed value into its `W`-word window.
    ///
    /// Validation (key range, operand and `snaps` width) is all-or-
    /// nothing *before* anything is sent. After that, entries are applied
    /// per-wave by their owning workers; on failure the first error is
    /// returned and other entries may still have been applied (exactly
    /// which is knowable from `snaps` only on `Ok`).
    pub fn update_batch(
        &mut self,
        keys: &[u64],
        op: &mut dyn FnMut(usize) -> (UpdateKind, InlineVal),
        snaps: Option<&mut [u64]>,
    ) -> Result<(), MeshError> {
        let w = self.width();
        if let Some(s) = snaps.as_deref() {
            if s.len() != keys.len() * w {
                return Err(MeshError::WrongValueLen { expected: keys.len() * w, got: s.len() });
            }
        }
        self.ops.clear();
        for i in 0..keys.len() {
            let (kind, operand) = op(i);
            if operand.len() != w {
                return Err(MeshError::WrongValueLen { expected: w, got: operand.len() });
            }
            self.ops.push((kind, operand));
        }
        self.route_batch(keys)?;
        self.pump(keys, true, snaps)
    }

    /// Wraps `operand` inline, enforcing width `w`.
    fn inline(operand: &[u64], w: usize) -> Result<InlineVal, MeshError> {
        if operand.len() != w {
            return Err(MeshError::WrongValueLen { expected: w, got: operand.len() });
        }
        InlineVal::from_slice(operand)
            .ok_or(MeshError::WrongValueLen { expected: w, got: operand.len() })
    }

    /// Validates every key and caches its owning worker. All-or-nothing:
    /// nothing is sent if any key is out of range.
    fn route_batch(&mut self, keys: &[u64]) -> Result<(), MeshError> {
        self.owners.clear();
        self.owners.reserve(keys.len());
        for &key in keys {
            let owner = self.mesh.owner_of(key)?;
            self.owners.push(owner as u32);
        }
        Ok(())
    }

    /// The scatter/gather engine: pushes entry `i` of `keys` (a read, or
    /// write `self.ops[i]`) to its owner, packing consecutive same-owner
    /// entries, and gathers one reply per entry. `out` (when given)
    /// receives each entry's value at its `W`-word window, indexed by
    /// reply token. Returns the first error; every entry completes (or
    /// is accounted `Disconnected`) before returning.
    fn pump(
        &mut self,
        keys: &[u64],
        write: bool,
        mut out: Option<&mut [u64]>,
    ) -> Result<(), MeshError> {
        let total = keys.len();
        let w = self.width();
        let window = self.links.first().map_or(0, |l| l.op_tx.capacity()) as u32;
        let mut next = 0usize;
        let mut received = 0usize;
        let mut first_err: Option<MeshError> = None;

        while received < total || next < total {
            let mut progress = false;

            // Push phase: scatter as much as windows and rings allow.
            while next < total {
                let Some(&owner) = self.owners.get(next) else { break };
                let owner = owner as usize;
                let Some(link) = self.links.get_mut(owner) else { break };
                if link.shared.closed.load(Ordering::Acquire) {
                    // Refused before sending: definitively not applied.
                    first_err.get_or_insert(MeshError::Disconnected);
                    next += 1;
                    received += 1;
                    continue;
                }
                let room = (window.saturating_sub(link.inflight)) as usize;
                if room == 0 {
                    break;
                }
                // Pack consecutive entries owned by the same worker.
                let mut n = 1usize;
                while n < BATCH_SPAN
                    && n < room
                    && next + n < total
                    && self.owners.get(next + n) == Some(&(owner as u32))
                {
                    n += 1;
                }
                let msg = build_op(write, keys, &self.ops, next, n);
                let link = match self.links.get_mut(owner) {
                    Some(l) => l,
                    None => break,
                };
                match link.op_tx.try_push(msg) {
                    Ok(()) => {
                        link.inflight += n as u32;
                        next += n;
                        progress = true;
                        if let Some(f) = self.woke.get_mut(owner) {
                            *f = true;
                        }
                    }
                    // Ring full despite window room (worker mid-pop):
                    // drain replies below and retry.
                    Err(_) => break,
                }
            }

            // Wake phase: one unpark per worker we pushed to.
            for (wi, flag) in self.woke.iter_mut().enumerate() {
                if *flag {
                    *flag = false;
                    if let Some(ws) = self.mesh.workers.get(wi) {
                        ws.parker.wake();
                    }
                }
            }

            // Gather phase.
            progress |= drain_links(&mut self.links, w, &mut out, &mut received, &mut first_err);
            if received >= total && next >= total {
                break;
            }

            // Disconnect sweep: a drained link delivers no further
            // replies (its Release pairs with our Acquire, so the final
            // pop below sees everything it did push).
            let retired = self.mesh.retired.load(Ordering::Acquire);
            for link in self.links.iter_mut() {
                if link.inflight > 0 && (retired || link.shared.drained.load(Ordering::Acquire)) {
                    drain_one(link, w, &mut out, &mut received, &mut first_err);
                    received += link.inflight as usize;
                    link.inflight = 0;
                    first_err.get_or_insert(MeshError::Disconnected);
                    progress = true;
                }
            }

            if !progress {
                self.waiter.prepare();
                // Re-check after announcing intent: a reply landing
                // before `prepare` would otherwise be missed.
                let again =
                    drain_links(&mut self.links, w, &mut out, &mut received, &mut first_err);
                if again {
                    self.waiter.cancel();
                } else {
                    self.waiter.wait(PARK_TIMEOUT);
                }
            }
        }
        first_err.map_or(Ok(()), Err)
    }
}

impl<B: MwFactory> Drop for MeshHandle<B> {
    fn drop(&mut self) {
        for link in self.links.iter() {
            link.shared.dropped.store(true, Ordering::Release);
        }
        // Wake the workers so they retire the links promptly.
        for ws in self.mesh.workers.iter() {
            ws.parker.wake();
        }
    }
}

/// Builds the ring message for entries `at .. at + n` (all same-owner;
/// `n ≤ BATCH_SPAN`). Tokens are entry indices, so replies can land
/// directly in the caller's output windows.
fn build_op(write: bool, keys: &[u64], ops: &[(UpdateKind, InlineVal)], at: usize, n: usize) -> Op {
    let token = at as u32;
    if write {
        if n == 1 {
            // at < keys.len() == ops.len(): pump iterates entry indices
            let (kind, operand) = ops[at];
            match kind {
                // same bound as above
                UpdateKind::Set => Op::Set { key: keys[at], val: operand, token },
                // same bound as above
                _ => Op::Update { key: keys[at], kind, operand, token },
            }
        } else {
            let mut ks = [0u64; BATCH_SPAN];
            let mut kinds = [UpdateKind::Set; BATCH_SPAN];
            let mut operands = [InlineVal::default(); BATCH_SPAN];
            for i in 0..n.min(BATCH_SPAN) {
                // i < BATCH_SPAN (min above); at + i < keys.len() == ops.len()
                ks[i] = keys[at + i];
                // same bounds as above
                let (kind, operand) = ops[at + i];
                kinds[i] = kind; // i < BATCH_SPAN as above
                operands[i] = operand; // i < BATCH_SPAN as above
            }
            Op::UpdateBatch { n: n as u8, keys: ks, kinds, operands, token }
        }
    } else if n == 1 {
        // at < keys.len(): pump iterates entry indices
        Op::Get { key: keys[at], token }
    } else {
        let mut ks = [0u64; BATCH_SPAN];
        let m = n.min(BATCH_SPAN);
        // m <= BATCH_SPAN and at + m <= keys.len(): the span was sized by the caller
        ks[..m].copy_from_slice(&keys[at..at + m]);
        Op::ReadBatch { n: n as u8, keys: ks, token }
    }
}

/// Pops every available reply on every link. Returns whether anything
/// arrived.
fn drain_links(
    links: &mut [CallerLink],
    w: usize,
    out: &mut Option<&mut [u64]>,
    received: &mut usize,
    first_err: &mut Option<MeshError>,
) -> bool {
    let mut any = false;
    for link in links.iter_mut() {
        let before = *received;
        drain_one(link, w, out, received, first_err);
        any |= *received != before;
    }
    any
}

/// Pops every available reply on one link, landing values in `out` by
/// token and recording the first error.
fn drain_one(
    link: &mut CallerLink,
    w: usize,
    out: &mut Option<&mut [u64]>,
    received: &mut usize,
    first_err: &mut Option<MeshError>,
) {
    while let Some(rep) = link.rep_rx.try_pop() {
        link.inflight = link.inflight.saturating_sub(1);
        *received += 1;
        match rep.result {
            Ok(val) => {
                if let Some(dst) = out.as_deref_mut() {
                    let at = rep.token as usize * w;
                    match dst.get_mut(at..at + val.len()) {
                        Some(window) if val.len() == w => {
                            window.copy_from_slice(val.as_slice());
                        }
                        // A token or width the caller did not issue —
                        // impossible from our own worker, but never
                        // worth a panic on the reply path.
                        _ => {
                            first_err.get_or_insert(MeshError::Internal);
                        }
                    }
                }
            }
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }
}
