//! Fixture tests: each rule family must fire with the exact rule id and
//! line numbers on its bad fixture and stay silent on its clean one,
//! the JSON report must be byte-deterministic, and PR 6's acceptance
//! drill — weakening `SlotRegistry::release` from `Release` to `Relaxed`
//! — must be caught *statically*, on the real registry source.

use std::path::{Path, PathBuf};

use mwllsc_lint::lint_file_content;
use mwllsc_lint::report::Finding;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rule_lines(findings: &[Finding], rule: &str) -> Vec<usize> {
    findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

/// Every finding in `findings` must carry `rule` — a fixture tripping a
/// rule it was not built for is a fixture bug worth failing loudly on.
fn assert_only_rule(findings: &[Finding], rule: &str) {
    for f in findings {
        assert_eq!(f.rule, rule, "unexpected {}:{} [{}] {}", f.file, f.line, f.rule, f.excerpt);
    }
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[test]
fn l001_facade_bad_lines() {
    let findings = lint_file_content("crates/fake/src/facade_bad.rs", &fixture("facade_bad.rs"));
    assert_only_rule(&findings, "L001");
    assert_eq!(rule_lines(&findings, "L001"), vec![2, 6]);
}

#[test]
fn l001_facade_clean() {
    let findings =
        lint_file_content("crates/fake/src/facade_clean.rs", &fixture("facade_clean.rs"));
    assert_eq!(findings, vec![], "clean fixture must produce no findings");
}

#[test]
fn l002_ordering_bad_lines() {
    // A coverage-file path: unannotated sites are findings too.
    let findings = lint_file_content("crates/core/src/variable.rs", &fixture("ordering_bad.rs"));
    assert_only_rule(&findings, "L002");
    assert_eq!(rule_lines(&findings, "L002"), vec![6, 7, 8, 9, 10, 11, 15, 18]);
}

#[test]
fn l002_ordering_clean() {
    let findings = lint_file_content("crates/core/src/variable.rs", &fixture("ordering_clean.rs"));
    assert_eq!(findings, vec![], "clean fixture must produce no findings");
}

#[test]
fn l002_outside_coverage_files_only_annotated_sites_are_checked() {
    // Same bad fixture under a non-coverage path: the unannotated site
    // (line 15) is tolerated, the annotated violations still fire.
    let findings =
        lint_file_content("crates/fake/src/ordering_bad.rs", &fixture("ordering_bad.rs"));
    assert_eq!(rule_lines(&findings, "L002"), vec![6, 7, 8, 9, 10, 11, 18]);
}

#[test]
fn l003_safety_bad_lines() {
    let findings = lint_file_content("crates/fake/src/safety_bad.rs", &fixture("safety_bad.rs"));
    assert_only_rule(&findings, "L003");
    assert_eq!(rule_lines(&findings, "L003"), vec![4, 7, 15]);
}

#[test]
fn l003_safety_clean() {
    let findings =
        lint_file_content("crates/fake/src/safety_clean.rs", &fixture("safety_clean.rs"));
    assert_eq!(findings, vec![], "clean fixture must produce no findings");
}

#[test]
fn l004_alloc_bad_lines() {
    let findings = lint_file_content("crates/fake/src/alloc_bad.rs", &fixture("alloc_bad.rs"));
    assert_only_rule(&findings, "L004");
    assert_eq!(rule_lines(&findings, "L004"), vec![5, 7]);
}

#[test]
fn l004_alloc_clean() {
    let findings = lint_file_content("crates/fake/src/alloc_clean.rs", &fixture("alloc_clean.rs"));
    assert_eq!(findings, vec![], "clean fixture must produce no findings");
}

#[test]
fn l005_panic_bad_lines() {
    // Only server/store library paths are in scope for L005.
    let findings = lint_file_content("crates/server/src/panic_bad.rs", &fixture("panic_bad.rs"));
    assert_only_rule(&findings, "L005");
    assert_eq!(rule_lines(&findings, "L005"), vec![4, 5, 7, 9]);
}

#[test]
fn l005_panic_clean() {
    let findings = lint_file_content("crates/store/src/panic_clean.rs", &fixture("panic_clean.rs"));
    assert_eq!(findings, vec![], "clean fixture must produce no findings");
}

#[test]
fn l005_does_not_apply_outside_server_and_store() {
    let findings = lint_file_content("crates/fake/src/panic_bad.rs", &fixture("panic_bad.rs"));
    assert_eq!(findings, vec![], "panic-freedom is scoped to mwllsc-server/mwllsc-store");
}

/// The current tree must be lint-clean — this is the same gate CI's
/// `lint-static` job applies, enforced from `cargo test` so local runs
/// catch drift immediately.
#[test]
fn workspace_is_clean() {
    let report = mwllsc_lint::lint_workspace(&workspace_root()).expect("walk");
    assert!(report.findings.is_empty(), "lint findings on the tree:\n{}", report.to_human());
}

/// Two runs over the workspace produce byte-identical JSON.
#[test]
fn json_report_is_deterministic() {
    let root = workspace_root();
    let a = mwllsc_lint::lint_workspace(&root).expect("walk").to_json();
    let b = mwllsc_lint::lint_workspace(&root).expect("walk").to_json();
    assert_eq!(a, b, "JSON report must be byte-identical across runs");
}

/// PR 6's acceptance drill, statically: demote the `Release` store in
/// `SlotRegistry::release` to `Relaxed` in the *real* registry source
/// and the ordering rule must flag exactly that line — no
/// `--cfg mwllsc_model` build, no scheduler run.
#[test]
fn seeded_regression_release_weakened_to_relaxed_is_flagged() {
    let path = workspace_root().join("crates/core/src/registry.rs");
    let original = std::fs::read_to_string(&path).expect("read registry.rs");
    assert_eq!(
        lint_file_content("crates/core/src/registry.rs", &original),
        vec![],
        "the shipped registry must be clean"
    );

    let needle = "Ordering::Release); // lint: cell=SLOT";
    assert!(original.contains(needle), "release-store site moved; update this drill");
    let weakened = original.replacen(needle, "Ordering::Relaxed); // lint: cell=SLOT", 1);

    let findings = lint_file_content("crates/core/src/registry.rs", &weakened);
    let expected_line = 1 + original.lines().position(|l| l.contains(needle)).expect("needle line");
    assert_eq!(
        rule_lines(&findings, "L002"),
        vec![expected_line],
        "weakened release store must be the one finding: {findings:?}"
    );
    let f = &findings[0];
    assert!(f.hint.contains("Release or stronger"), "hint names the required ordering: {}", f.hint);
}
