//! Schedulers: policies for choosing which simulated process steps next.
//!
//! The algorithm must be correct under *every* schedule; these policies
//! probe different corners of the schedule space: fair rotation
//! ([`RoundRobin`]), uniform chaos ([`RandomSched`]), skewed interference
//! ([`WeightedRandom`]), and targeted starvation ([`StarveVictim`]) — the
//! adversary the helping mechanism exists to defeat.

use crate::rng::SmallRng;

/// A policy choosing the next process to step.
pub trait Scheduler {
    /// Picks one element of `runnable` (non-empty) to execute next.
    /// `step` is the global step counter, usable for phase-based policies.
    fn pick(&mut self, runnable: &[usize], step: u64) -> usize;
}

/// Fair rotation over runnable processes.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, runnable: &[usize], _step: u64) -> usize {
        let choice = runnable[self.cursor % runnable.len()];
        self.cursor = self.cursor.wrapping_add(1);
        choice
    }
}

/// Uniformly random choice, seeded for reproducibility.
#[derive(Clone, Debug)]
pub struct RandomSched {
    rng: SmallRng,
}

impl RandomSched {
    /// Creates a scheduler from a seed; equal seeds give equal schedules.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { rng: SmallRng::seed_from_u64(seed) }
    }
}

impl Scheduler for RandomSched {
    fn pick(&mut self, runnable: &[usize], _step: u64) -> usize {
        runnable[self.rng.gen_index(runnable.len())]
    }
}

/// Random choice with per-process weights: processes with higher weight run
/// more often, creating sustained asymmetric interference (fast writers vs
/// slow readers).
#[derive(Clone, Debug)]
pub struct WeightedRandom {
    weights: Vec<f64>,
    rng: SmallRng,
}

impl WeightedRandom {
    /// Creates a scheduler giving process `p` relative weight `weights[p]`.
    ///
    /// # Panics
    ///
    /// Panics if any weight is non-positive or non-finite.
    #[must_use]
    pub fn new(weights: Vec<f64>, seed: u64) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        Self { weights, rng: SmallRng::seed_from_u64(seed) }
    }
}

impl Scheduler for WeightedRandom {
    fn pick(&mut self, runnable: &[usize], _step: u64) -> usize {
        let total: f64 = runnable.iter().map(|&p| self.weights[p]).sum();
        let mut t = self.rng.gen_f64() * total;
        for &p in runnable {
            t -= self.weights[p];
            if t <= 0.0 {
                return p;
            }
        }
        *runnable.last().expect("runnable is non-empty")
    }
}

/// Maximal targeted starvation: the victim is stepped only once every
/// `grant_every` scheduling decisions (and when nobody else can run); all
/// other processes rotate fairly in between.
///
/// With `grant_every` larger than the others' operation length, the victim
/// is overtaken by arbitrarily many successful SCs inside a single one of
/// its buffer-copy loops — exactly the Case (iii) of paper §2.5 that only
/// the helping mechanism can save.
#[derive(Clone, Debug)]
pub struct StarveVictim {
    victim: usize,
    grant_every: u64,
    rr: RoundRobin,
    decisions: u64,
}

impl StarveVictim {
    /// Creates the scheduler starving `victim`, granting it one step per
    /// `grant_every` decisions.
    ///
    /// # Panics
    ///
    /// Panics if `grant_every` is zero.
    #[must_use]
    pub fn new(victim: usize, grant_every: u64) -> Self {
        assert!(grant_every > 0, "grant_every must be positive");
        Self { victim, grant_every, rr: RoundRobin::default(), decisions: 0 }
    }
}

impl Scheduler for StarveVictim {
    fn pick(&mut self, runnable: &[usize], step: u64) -> usize {
        self.decisions += 1;
        let others: Vec<usize> = runnable.iter().copied().filter(|&p| p != self.victim).collect();
        let victim_runnable = runnable.contains(&self.victim);
        if others.is_empty() {
            debug_assert!(victim_runnable);
            return self.victim;
        }
        if victim_runnable && self.decisions % self.grant_every == 0 {
            return self.victim;
        }
        self.rr.pick(&others, step)
    }
}

/// Replays a recorded schedule exactly (see
/// [`RunConfig::record_schedule`](crate::runner::RunConfig)).
///
/// Deterministic debugging workflow: record a failing run's schedule from
/// [`RunFailure::schedule`](crate::runner::RunFailure), then re-run the
/// identical `Sim` under `ReplaySched` to reproduce the violation
/// step-for-step.
#[derive(Clone, Debug)]
pub struct ReplaySched {
    tape: Vec<usize>,
    pos: usize,
}

impl ReplaySched {
    /// Creates a scheduler that replays `tape`.
    #[must_use]
    pub fn new(tape: Vec<usize>) -> Self {
        Self { tape, pos: 0 }
    }

    /// How much of the tape has been consumed.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl Scheduler for ReplaySched {
    /// # Panics
    ///
    /// Panics if the tape is exhausted or names a non-runnable process —
    /// both mean the replayed `Sim` differs from the recorded one.
    fn pick(&mut self, runnable: &[usize], _step: u64) -> usize {
        let pid = *self
            .tape
            .get(self.pos)
            .unwrap_or_else(|| panic!("replay tape exhausted at step {}", self.pos));
        assert!(
            runnable.contains(&pid),
            "replay divergence at step {}: p{pid} not runnable (runnable: {runnable:?})",
            self.pos
        );
        self.pos += 1;
        pid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_follows_tape() {
        let mut s = ReplaySched::new(vec![1, 0, 1]);
        let r = [0usize, 1];
        assert_eq!(s.pick(&r, 0), 1);
        assert_eq!(s.pick(&r, 1), 0);
        assert_eq!(s.pick(&r, 2), 1);
        assert_eq!(s.position(), 3);
    }

    #[test]
    #[should_panic(expected = "tape exhausted")]
    fn replay_panics_past_end() {
        let mut s = ReplaySched::new(vec![0]);
        let r = [0usize];
        let _ = s.pick(&r, 0);
        let _ = s.pick(&r, 1);
    }

    #[test]
    #[should_panic(expected = "divergence")]
    fn replay_panics_on_blocked_pick() {
        let mut s = ReplaySched::new(vec![5]);
        let _ = s.pick(&[0, 1], 0);
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = RoundRobin::default();
        let r = [0usize, 1, 2];
        let picks: Vec<usize> = (0..6).map(|i| s.pick(&r, i)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_is_reproducible_and_in_range() {
        let r = [3usize, 5, 9];
        let a: Vec<usize> = {
            let mut s = RandomSched::new(42);
            (0..50).map(|i| s.pick(&r, i)).collect()
        };
        let b: Vec<usize> = {
            let mut s = RandomSched::new(42);
            (0..50).map(|i| s.pick(&r, i)).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|p| r.contains(p)));
    }

    #[test]
    fn weighted_biases_heavily() {
        let mut s = WeightedRandom::new(vec![1.0, 100.0], 7);
        let r = [0usize, 1];
        let ones = (0..1000).filter(|&i| s.pick(&r, i) == 1).count();
        assert!(ones > 900, "weight-100 process picked only {ones}/1000");
    }

    #[test]
    fn starve_victim_rarely_grants() {
        let mut s = StarveVictim::new(0, 10);
        let r = [0usize, 1, 2];
        let victims = (0..100).filter(|&i| s.pick(&r, i) == 0).count();
        assert_eq!(victims, 10);
    }

    #[test]
    fn starve_victim_runs_victim_when_alone() {
        let mut s = StarveVictim::new(0, 1000);
        assert_eq!(s.pick(&[0], 0), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_rejects_zero_weight() {
        let _ = WeightedRandom::new(vec![0.0, 1.0], 0);
    }
}
