//! L004 clean fixture: a marked region that only fills caller buffers,
//! plus one justified escape.

// lint: no-alloc
pub fn hot(words: &[u64], out: &mut Vec<u8>) {
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

// lint: no-alloc
pub fn hot_with_scratch(out: &mut Vec<u8>) {
    let scratch = Vec::new(); // lint: alloc-ok(one-time scratch, measured cold)
    out.extend_from_slice(&scratch);
}
