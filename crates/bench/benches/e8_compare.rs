//! E8 (bench form): per-operation cost of every implementation, plus a
//! contended storm measured with `iter_custom`.
//!
//! The harness (`mwllsc-harness e8-compare`) produces the headline
//! throughput/space table; this bench gives criterion-grade per-op
//! latencies for the same implementations.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llsc_baselines::{build, Algo};
use std::hint::black_box;

const W: usize = 8;
const N: usize = 4;

fn bench_uncontended_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_uncontended_ll_sc");
    for algo in Algo::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &algo| {
            let init = vec![0u64; W];
            let (mut handles, _) = build(algo, N, W, &init);
            let mut h = handles.remove(0);
            let mut buf = vec![0u64; W];
            let val = vec![5u64; W];
            b.iter(|| {
                h.ll(black_box(&mut buf));
                black_box(h.sc(black_box(&val)));
            });
        });
    }
    group.finish();
}

fn bench_contended_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_contended_storm_4threads");
    group.sample_size(10);
    for algo in Algo::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &algo| {
            b.iter_custom(|iters| {
                // `iters` successful updates split across N threads.
                let per = iters / N as u64 + 1;
                let init = vec![0u64; W];
                let (mut handles, _) = build(algo, N, W, &init);
                let mut h0 = handles.remove(0);
                let start = Instant::now();
                let joins: Vec<_> = handles
                    .into_iter()
                    .map(|mut h| {
                        std::thread::spawn(move || {
                            let mut v = vec![0u64; W];
                            let mut wins = 0;
                            while wins < per {
                                h.ll(&mut v);
                                v[0] += 1;
                                if h.sc(&v) {
                                    wins += 1;
                                }
                            }
                        })
                    })
                    .collect();
                let mut v = vec![0u64; W];
                let mut wins = 0;
                while wins < per {
                    h0.ll(&mut v);
                    v[0] += 1;
                    if h0.sc(&v) {
                        wins += 1;
                    }
                }
                for j in joins {
                    j.join().unwrap();
                }
                start.elapsed()
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(Duration::from_millis(900)).warm_up_time(Duration::from_millis(200));
    targets = bench_uncontended_pair, bench_contended_storm
);
criterion_main!(benches);
