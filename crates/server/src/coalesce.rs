//! Request coalescing: turning socket-level concurrency into the store's
//! batched single-SC-commit-per-key-run economics.
//!
//! Each worker tick builds [`Wave`]s: every connection with pipelined
//! requests contributes its **leading maximal run of same-class
//! requests** (reads: `GET`/`MGET`; writes: `SET`/`UPDATE`/`MSET`), and
//! the wave merges all contributions into at most one write batch
//! (`update_many` — equal-key runs fold into one SC commit) and one read
//! batch (`read_many_into`). Responses scatter back per connection in
//! request order.
//!
//! Limiting a connection to one class per wave is what keeps pipelined
//! FIFO semantics: a connection's wave responses all come from a single
//! dispatch, so `SET k; GET k` on one connection can never see the `GET`
//! overtake the `SET` (the `GET` rides the *next* wave, and writes
//! dispatch before reads within every wave anyway). Across connections
//! no ordering is promised — they race exactly as concurrent
//! [`StoreHandle`](mwllsc_store::StoreHandle)s do.
//!
//! Requests are validated *here*, before batching: a bad key or wrong
//! width becomes an in-order error reply and never enters a batch, so
//! the store's all-or-nothing batch validation cannot be tripped by one
//! malformed request and genuine batch failures (`ShardExhausted` from
//! external lease pressure) are the only batch-wide errors.

use mwllsc::sync::Ordering;
use mwllsc_mesh::{InlineVal, UpdateKind};
use mwllsc_store::DynStoreHandle;

use crate::conn::{Conn, Pending};
use crate::proto::{
    encode_response, encode_value_response, encode_values_response, FrameError, Request, Response,
    UpdateOp, WireError,
};
use crate::route::{wire_of_mesh, MeshRoute, Route};
use crate::stats::AtomicStats;

/// How a wave reaches the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dispatch {
    /// Merge every connection's contribution into one write batch and
    /// one read batch per wave (the design point).
    Coalesced,
    /// One store call per request (the ablation baseline E13 compares
    /// against).
    PerRequest,
}

/// Pre-batch request validation against the store's shape.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Validator {
    pub key_capacity: u64,
    pub width: usize,
}

impl Validator {
    fn key(&self, key: u64) -> Result<(), WireError> {
        if key >= self.key_capacity {
            return Err(WireError::KeyOutOfRange { key, capacity: self.key_capacity });
        }
        Ok(())
    }

    fn value(&self, len: usize) -> Result<(), WireError> {
        if len != self.width {
            return Err(WireError::WrongValueLen { expected: self.width as u64, got: len as u64 });
        }
        Ok(())
    }

    fn check(&self, req: &Request) -> Result<(), WireError> {
        match req {
            Request::Get { key } => self.key(*key),
            Request::Set { key, value } => self.key(*key).and_then(|()| self.value(value.len())),
            Request::Update { key, op } => {
                self.key(*key).and_then(|()| self.value(op.operand().len()))
            }
            Request::MGet { keys } => keys.iter().try_for_each(|&k| self.key(k)),
            Request::MSet { pairs } => {
                pairs.iter().try_for_each(|(k, v)| self.key(*k).and_then(|()| self.value(v.len())))
            }
        }
    }
}

/// A request's dispatch class.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Read,
    Write,
}

fn class(req: &Request) -> Class {
    match req {
        Request::Get { .. } | Request::MGet { .. } => Class::Read,
        Request::Set { .. } | Request::Update { .. } | Request::MSet { .. } => Class::Write,
    }
}

/// One write-batch entry's operation.
#[derive(Debug)]
enum WriteOp {
    /// Blind set to this value.
    Set(Vec<u64>),
    /// Read-modify-write with this op.
    Update(UpdateOp),
}

/// One response slot: what to encode for one request once the wave's
/// batches have run. Slots are stored `(conn index, slot)` in request
/// order per connection.
#[derive(Debug)]
enum Slot {
    /// `count` write entries starting at `first`; reply the installed
    /// value of entry `first` if `reply_value` (UPDATE), else `Ok`.
    Write { first: usize, count: usize, reply_value: bool },
    /// One read key at `first` (GET) → `Value`.
    ReadValue { first: usize },
    /// `count` read keys from `first` (MGET) → `Values`.
    ReadValues { first: usize, count: usize },
    /// Failed validation (or, after dispatch, a batch error).
    Err(WireError),
    /// The stream desynced; reply `BadFrame` and poison the connection.
    Bad(FrameError),
}

/// One dispatch wave: the merged batches plus per-request response slots.
#[derive(Debug, Default)]
pub(crate) struct Wave {
    write_keys: Vec<u64>,
    write_ops: Vec<WriteOp>,
    /// Installed value per write entry, flat `entries × W` (filled at
    /// dispatch; the last LL/SC round's application is the committed
    /// one, so recording inside the closure observes installed state).
    write_snaps: Vec<u64>,
    read_keys: Vec<u64>,
    /// Read results, flat `keys × W` (filled at dispatch).
    read_vals: Vec<u64>,
    /// `(conn index, slot)` in per-connection request order.
    slots: Vec<(usize, Slot)>,
    /// Per-slot dispatch failure (batch-wide in coalesced mode).
    slot_errs: Vec<Option<WireError>>,
}

impl Wave {
    /// Builds the next wave from every connection's leading run.
    /// Returns `None` when no connection has dispatchable requests.
    ///
    /// Two admission bounds keep waves incremental: a connection whose
    /// queued output exceeds `out_cap` contributes nothing (computing
    /// more responses for a peer that isn't reading would defeat the
    /// backpressure the read path applies), and a contribution is capped
    /// at `max_run` requests, so one deeply pipelined connection cannot
    /// inflate a single wave's latency — its remaining requests stay
    /// queued, in order, for the following waves.
    pub(crate) fn build(
        conns: &mut [Conn],
        v: &Validator,
        max_run: usize,
        out_cap: usize,
    ) -> Option<Wave> {
        let mut wave = Wave::default();
        for (ci, conn) in conns.iter_mut().enumerate() {
            if conn.out_queued() > out_cap {
                continue;
            }
            let mut run_class = None;
            let mut taken = 0usize;
            while taken < max_run {
                let Some(front) = conn.pending.pop_front() else { break };
                taken += 1;
                let slot = match front {
                    Pending::Bad(e) => {
                        wave.slots.push((ci, Slot::Bad(e)));
                        break; // a poisoned stream has nothing after this
                    }
                    Pending::Req(req) => {
                        let c = class(&req);
                        if *run_class.get_or_insert(c) != c {
                            // Next class rides the next wave: put the
                            // request back at the front, still in order.
                            conn.pending.push_front(Pending::Req(req));
                            break;
                        }
                        wave.admit(req, v)
                    }
                };
                wave.slots.push((ci, slot));
            }
        }
        if wave.slots.is_empty() {
            None
        } else {
            wave.slot_errs = (0..wave.slots.len()).map(|_| None).collect();
            Some(wave)
        }
    }

    /// Validates one request and stages it into the wave's batches.
    fn admit(&mut self, req: Request, v: &Validator) -> Slot {
        if let Err(e) = v.check(&req) {
            return Slot::Err(e);
        }
        match req {
            Request::Get { key } => {
                self.read_keys.push(key);
                Slot::ReadValue { first: self.read_keys.len() - 1 }
            }
            Request::MGet { keys } => {
                let first = self.read_keys.len();
                let count = keys.len();
                self.read_keys.extend_from_slice(&keys);
                Slot::ReadValues { first, count }
            }
            Request::Set { key, value } => {
                self.write_keys.push(key);
                self.write_ops.push(WriteOp::Set(value));
                Slot::Write { first: self.write_keys.len() - 1, count: 1, reply_value: false }
            }
            Request::Update { key, op } => {
                self.write_keys.push(key);
                self.write_ops.push(WriteOp::Update(op));
                Slot::Write { first: self.write_keys.len() - 1, count: 1, reply_value: true }
            }
            Request::MSet { pairs } => {
                let first = self.write_keys.len();
                let count = pairs.len();
                for (k, val) in pairs {
                    self.write_keys.push(k);
                    self.write_ops.push(WriteOp::Set(val));
                }
                Slot::Write { first, count, reply_value: false }
            }
        }
    }

    /// Runs the wave's batches against the store. Writes dispatch before
    /// reads, so a wave's reads observe its writes.
    pub(crate) fn dispatch(
        &mut self,
        handle: &mut dyn DynStoreHandle,
        mode: Dispatch,
        stats: &AtomicStats,
    ) {
        stats.waves.fetch_add(1, Ordering::Relaxed);
        match mode {
            Dispatch::Coalesced => self.dispatch_coalesced(handle, stats),
            Dispatch::PerRequest => self.dispatch_per_request(handle, stats),
        }
    }

    /// [`dispatch`](Self::dispatch) over either route: the store side
    /// commits through the handle's closure-based batch primitives, the
    /// mesh side through the ring-crossing declarative ones.
    ///
    /// Mesh batch errors fan to every slot of the failing class, like
    /// store batch errors do. The validator already screened keys and
    /// widths, so what remains is mesh shutdown — where over-reporting
    /// `Internal` on a dying connection set is the honest answer.
    pub(crate) fn dispatch_route(
        &mut self,
        route: &mut Route,
        mode: Dispatch,
        stats: &AtomicStats,
    ) {
        match route {
            Route::Store(h) => self.dispatch(&mut **h, mode, stats),
            Route::Mesh(m) => {
                stats.waves.fetch_add(1, Ordering::Relaxed);
                match mode {
                    Dispatch::Coalesced => self.dispatch_mesh_coalesced(&mut **m, stats),
                    Dispatch::PerRequest => self.dispatch_mesh_per_request(&mut **m, stats),
                }
            }
        }
    }

    // lint: no-alloc
    fn dispatch_mesh_coalesced(&mut self, m: &mut dyn MeshRoute, stats: &AtomicStats) {
        let w = m.width();
        if !self.write_keys.is_empty() {
            // Sizing the flat result buffers is the wave's only growth
            // (the mesh writes post-update snapshots straight into it).
            self.write_snaps.resize(self.write_keys.len() * w, 0);
            let ops = &self.write_ops;
            let r = m.update_batch(
                &self.write_keys,
                &mut |i| mesh_op(&ops[i]), // `i` enumerates write_keys; ops is parallel to it
                Some(&mut self.write_snaps),
            );
            stats.record_write_batch(self.write_keys.len());
            if let Err(e) = r {
                let err = wire_of_mesh(&e);
                for (errs, (_, slot)) in self.slot_errs.iter_mut().zip(&self.slots) {
                    if matches!(slot, Slot::Write { .. }) {
                        *errs = Some(err);
                    }
                }
            }
        }
        if !self.read_keys.is_empty() {
            self.read_vals.resize(self.read_keys.len() * w, 0);
            let r = m.read_many_into(&self.read_keys, &mut self.read_vals);
            stats.record_read_batch(self.read_keys.len());
            if let Err(e) = r {
                let err = wire_of_mesh(&e);
                for (errs, (_, slot)) in self.slot_errs.iter_mut().zip(&self.slots) {
                    if matches!(slot, Slot::ReadValue { .. } | Slot::ReadValues { .. }) {
                        *errs = Some(err);
                    }
                }
            }
        }
    }

    // lint: no-alloc
    fn dispatch_mesh_per_request(&mut self, m: &mut dyn MeshRoute, stats: &AtomicStats) {
        let w = m.width();
        self.write_snaps.resize(self.write_keys.len() * w, 0);
        self.read_vals.resize(self.read_keys.len() * w, 0);
        for (si, (_, slot)) in self.slots.iter().enumerate() {
            // Every slot's `first`/`count` range was staged by `admit`,
            // which pushed exactly that many keys — in-bounds throughout.
            let r = match *slot {
                Slot::Write { first, count, .. } => {
                    let keys = &self.write_keys[first..first + count]; // staged by admit
                    let ops = &self.write_ops;
                    let r = m.update_batch(
                        keys,
                        &mut |i| mesh_op(&ops[first + i]), // `i` enumerates keys; ops is parallel
                        Some(&mut self.write_snaps[first * w..(first + count) * w]), // sized above
                    );
                    stats.record_write_batch(count);
                    r
                }
                Slot::ReadValue { first } => {
                    stats.record_read_batch(1);
                    m.read_many_into(
                        &self.read_keys[first..first + 1],               // staged by admit
                        &mut self.read_vals[first * w..(first + 1) * w], // sized keys × w above
                    )
                }
                Slot::ReadValues { first, count } => {
                    let keys = &self.read_keys[first..first + count]; // staged by admit
                    stats.record_read_batch(count);
                    // Result buffer was sized `read_keys.len() * w` above.
                    m.read_many_into(keys, &mut self.read_vals[first * w..(first + count) * w])
                }
                Slot::Err(_) | Slot::Bad(_) => continue,
            };
            if let Err(e) = r {
                // `slot_errs` is sized to `slots` in `build`.
                self.slot_errs[si] = Some(wire_of_mesh(&e));
            }
        }
    }

    // lint: no-alloc
    fn dispatch_coalesced(&mut self, handle: &mut dyn DynStoreHandle, stats: &AtomicStats) {
        let w = handle.width();
        if !self.write_keys.is_empty() {
            // Sizing the flat result buffers is the wave's only growth;
            // the store closures below must stay allocation-free.
            self.write_snaps.resize(self.write_keys.len() * w, 0);
            let (ops, snaps) = (&self.write_ops, &mut self.write_snaps);
            let r = handle.update_many_dyn(&self.write_keys, &mut |i, buf| {
                apply_op(&ops[i], buf); // `i` enumerates write_keys; ops is parallel to it
                snaps[i * w..(i + 1) * w].copy_from_slice(buf); // snaps sized keys × w above
            });
            stats.record_write_batch(self.write_keys.len());
            if let Err(e) = r {
                let err = WireError::from_store(&e);
                for (errs, (_, slot)) in self.slot_errs.iter_mut().zip(&self.slots) {
                    if matches!(slot, Slot::Write { .. }) {
                        *errs = Some(err);
                    }
                }
            }
        }
        if !self.read_keys.is_empty() {
            self.read_vals.resize(self.read_keys.len() * w, 0);
            let r = handle.read_many_into(&self.read_keys, &mut self.read_vals);
            stats.record_read_batch(self.read_keys.len());
            if let Err(e) = r {
                let err = WireError::from_store(&e);
                for (errs, (_, slot)) in self.slot_errs.iter_mut().zip(&self.slots) {
                    if matches!(slot, Slot::ReadValue { .. } | Slot::ReadValues { .. }) {
                        *errs = Some(err);
                    }
                }
            }
        }
    }

    // lint: no-alloc
    fn dispatch_per_request(&mut self, handle: &mut dyn DynStoreHandle, stats: &AtomicStats) {
        let w = handle.width();
        self.write_snaps.resize(self.write_keys.len() * w, 0);
        self.read_vals.resize(self.read_keys.len() * w, 0);
        for (si, (_, slot)) in self.slots.iter().enumerate() {
            // Every slot's `first`/`count` range was staged by `admit`,
            // which pushed exactly that many keys — in-bounds throughout.
            let r = match *slot {
                Slot::Write { first, count, .. } => {
                    let keys = &self.write_keys[first..first + count]; // staged by admit
                    let (ops, snaps) = (&self.write_ops, &mut self.write_snaps);
                    let r = handle.update_many_dyn(keys, &mut |i, buf| {
                        apply_op(&ops[first + i], buf); // `i` enumerates keys; ops is parallel
                        snaps[(first + i) * w..(first + i + 1) * w].copy_from_slice(buf);
                        // sized above
                    });
                    stats.record_write_batch(count);
                    r
                }
                Slot::ReadValue { first } => {
                    stats.record_read_batch(1);
                    handle.read(
                        self.read_keys[first],                           // staged by admit
                        &mut self.read_vals[first * w..(first + 1) * w], // sized keys × w above
                    )
                }
                Slot::ReadValues { first, count } => {
                    let keys = &self.read_keys[first..first + count]; // staged by admit
                    stats.record_read_batch(count);
                    // Result buffer was sized `read_keys.len() * w` above.
                    handle.read_many_into(keys, &mut self.read_vals[first * w..(first + count) * w])
                }
                Slot::Err(_) | Slot::Bad(_) => continue,
            };
            if let Err(e) = r {
                // `slot_errs` is sized to `slots` in `build`.
                self.slot_errs[si] = Some(WireError::from_store(&e));
            }
        }
    }

    /// Encodes every slot's response into its connection's output
    /// buffer, in per-connection request order. Value-bearing replies
    /// encode straight out of the wave's flat result buffers — no
    /// per-reply `Vec<u64>` materialization.
    // lint: no-alloc
    pub(crate) fn scatter(self, conns: &mut [Conn], stats: &AtomicStats) {
        let w = if self.slots.is_empty() { 0 } else { self.width_hint() };
        // One reusable frame buffer per wave, cleared between slots.
        let mut buf = Vec::new(); // lint: alloc-ok(single per-wave scratch, reused across slots)
        for ((ci, slot), err) in self.slots.iter().zip(&self.slot_errs) {
            buf.clear();
            let err = if let Some(e) = err {
                Some(*e)
            } else {
                match *slot {
                    Slot::Write { first, reply_value, .. } => {
                        if reply_value {
                            encode_value_response(
                                // snaps were filled `entries × w` at dispatch
                                &self.write_snaps[first * w..(first + 1) * w],
                                &mut buf,
                            );
                        } else {
                            encode_response(&Response::Ok, &mut buf);
                        }
                        None
                    }
                    Slot::ReadValue { first } => {
                        encode_value_response(
                            // read_vals were filled `keys × w` at dispatch
                            &self.read_vals[first * w..(first + 1) * w],
                            &mut buf,
                        );
                        None
                    }
                    Slot::ReadValues { first, count } => {
                        encode_values_response(
                            // read_vals were filled `keys × w` at dispatch
                            &self.read_vals[first * w..(first + count) * w],
                            w,
                            &mut buf,
                        );
                        None
                    }
                    Slot::Err(e) => Some(e),
                    Slot::Bad(e) => {
                        conns[*ci].poison(); // `ci` indexes the conns slice build() walked
                        stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                        Some(WireError::BadFrame(e))
                    }
                }
            };
            if let Some(e) = err {
                encode_response(&Response::Error(e), &mut buf);
                stats.error_replies.fetch_add(1, Ordering::Relaxed);
            }
            stats.requests.fetch_add(1, Ordering::Relaxed);
            conns[*ci].queue_out(&buf); // `ci` indexes the conns slice build() walked
        }
    }

    /// Recovers `W` from the filled flat buffers (avoids threading the
    /// store handle into `scatter`).
    fn width_hint(&self) -> usize {
        if !self.write_keys.is_empty() {
            self.write_snaps.len() / self.write_keys.len()
        } else if !self.read_keys.is_empty() {
            self.read_vals.len() / self.read_keys.len()
        } else {
            0
        }
    }
}

fn apply_op(op: &WriteOp, buf: &mut [u64]) {
    match op {
        WriteOp::Set(v) => buf.copy_from_slice(v),
        WriteOp::Update(u) => u.apply(buf),
    }
}

/// Translates a wire write op into the mesh's declarative form. Width
/// was validated against the mesh (≤ `MAX_INLINE_WIDTH` by
/// construction) before admission, so `from_slice` cannot fail here;
/// the empty fallback would surface as a typed `WrongValueLen` reply.
// lint: no-alloc
fn mesh_op(op: &WriteOp) -> (UpdateKind, InlineVal) {
    match op {
        WriteOp::Set(v) => (UpdateKind::Set, InlineVal::from_slice(v).unwrap_or_default()),
        WriteOp::Update(UpdateOp::Add(v)) => {
            (UpdateKind::Add, InlineVal::from_slice(v).unwrap_or_default())
        }
        WriteOp::Update(UpdateOp::Max(v)) => {
            (UpdateKind::Max, InlineVal::from_slice(v).unwrap_or_default())
        }
    }
}
