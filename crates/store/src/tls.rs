//! Thread-cached store handles: [`Store::with`], mirroring
//! [`MwLlSc::with`](mwllsc::MwLlSc::with).
//!
//! Pool schedulers migrate logical tasks across OS threads; per-task
//! `attach()`/drop would discard each handle's accumulated shard-slot
//! leases and re-lease them one RMW at a time. Instead, each OS thread
//! lazily attaches one [`StoreHandle`] per store, caches it in
//! thread-local storage, and reuses it (with all its warm shard leases)
//! for every subsequent [`with`](Store::with) on that store. The cached
//! handle is dropped — releasing its shard slots — when the thread exits
//! or eagerly via [`detach_current_thread`].

use std::any::Any;
use std::cell::RefCell;
use std::sync::Arc;

use mwllsc::MwFactory;

use crate::handle::StoreHandle;
use crate::store::Store;

thread_local! {
    /// This thread's cached store handles, keyed by store address. The
    /// handle holds an `Arc` to the store, so the address cannot be
    /// recycled while the entry lives — the key is collision-free. Entries
    /// are type-erased because `Store` is generic over its backend; the
    /// address key pins the concrete `StoreHandle<B>` type, so the
    /// downcast on retrieval cannot fail.
    static ATTACHMENTS: RefCell<Vec<(usize, Box<dyn Any>)>> = const { RefCell::new(Vec::new()) };
}

impl<B: MwFactory> Store<B> {
    /// Runs `f` on this thread's cached [`StoreHandle`] for the store,
    /// attaching one (and caching it for later calls) on first use.
    ///
    /// Unlike `MwLlSc::with`, this never fails at acquisition time —
    /// shard slots are leased per touched shard inside `f`'s operations,
    /// which report [`ShardExhausted`](crate::StoreError::ShardExhausted)
    /// as a typed error. Size `shard_capacity` to the number of worker
    /// threads that may touch one shard concurrently.
    ///
    /// # Examples
    ///
    /// ```
    /// use mwllsc_store::{Store, StoreConfig};
    ///
    /// let store = Store::new(StoreConfig::new(4, 4, 1, 1 << 20));
    /// let total: u64 = (0..4u64)
    ///     .map(|_| {
    ///         let store = store.clone();
    ///         std::thread::spawn(move || {
    ///             store.with(|h| h.update(99, |v| v[0] += 1).unwrap()[0])
    ///         })
    ///     })
    ///     .collect::<Vec<_>>()
    ///     .into_iter()
    ///     .map(|j| j.join().unwrap())
    ///     .max()
    ///     .unwrap();
    /// assert_eq!(total, 4, "4 increments, each observed its predecessors");
    /// assert_eq!(store.live_slot_leases(), 0, "exited workers released their leases");
    /// ```
    pub fn with<R>(self: &Arc<Self>, f: impl FnOnce(&mut StoreHandle<B>) -> R) -> R {
        let key = Arc::as_ptr(self) as usize;
        // Take the entry out of the cache while `f` runs so a nested
        // `with` on a *different* store does not hit a RefCell
        // double-borrow; a nested `with` on the *same* store attaches a
        // second handle (with its own shard leases).
        let cached: Option<StoreHandle<B>> = ATTACHMENTS
            .with(|c| {
                let mut c = c.borrow_mut();
                c.iter().position(|(k, _)| *k == key).map(|i| c.swap_remove(i).1)
            })
            .map(|any| {
                *any.downcast::<StoreHandle<B>>()
                    // lint: panic-ok(cache key is the store's address, so the Any is always a StoreHandle<B>; see module docs)
                    .expect("the store's address pins the cached handle's backend type")
            });
        let mut handle = cached.unwrap_or_else(|| self.attach());
        let r = f(&mut handle);
        ATTACHMENTS.with(|c| {
            let mut c = c.borrow_mut();
            if c.iter().any(|(k, _)| *k == key) {
                // A nested `with` on the same store already re-cached a
                // handle under this key while ours was checked out; keep
                // one cached handle per (thread, store) and release ours
                // rather than pinning extra shard slots until thread exit.
                drop(handle);
            } else {
                c.push((key, Box::new(handle)));
            }
        });
        r
    }
}

/// Drops every store handle cached by [`Store::with`] on the *current*
/// thread, releasing their shard-slot leases (for all stores this thread
/// has touched) immediately instead of at thread exit.
///
/// # Examples
///
/// ```
/// use mwllsc_store::{detach_current_thread, Store, StoreConfig};
///
/// let store = Store::new(StoreConfig::new(2, 1, 1, 100));
/// store.with(|h| h.update(5, |v| v[0] = 1).unwrap());
/// assert_eq!(store.live_slot_leases(), 1, "handle (and its lease) is cached");
/// detach_current_thread();
/// assert_eq!(store.live_slot_leases(), 0);
/// ```
pub fn detach_current_thread() {
    ATTACHMENTS.with(|c| c.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    #[test]
    fn with_caches_one_handle_per_thread() {
        let store = Store::new(StoreConfig::new(2, 2, 1, 100));
        store.with(|h| h.update(1, |v| v[0] += 1).unwrap());
        let leases = store.live_slot_leases();
        assert_eq!(leases, 1);
        // Second call reuses the cached handle: no new lease for the
        // already-touched shard.
        store.with(|h| h.update(1, |v| v[0] += 1).unwrap());
        assert_eq!(store.live_slot_leases(), leases);
        detach_current_thread();
        assert_eq!(store.live_slot_leases(), 0);
    }

    #[test]
    fn nested_with_on_distinct_stores_works() {
        let a = Store::new(StoreConfig::new(1, 1, 1, 10));
        let b = Store::new(StoreConfig::new(1, 1, 1, 10));
        let (va, vb) = a.with(|ha| {
            let va = ha.update(0, |v| v[0] = 1).unwrap()[0];
            let vb = b.with(|hb| hb.update(0, |v| v[0] = 2).unwrap()[0]);
            (va, vb)
        });
        assert_eq!((va, vb), (1, 2));
        detach_current_thread();
        assert_eq!(a.live_slot_leases() + b.live_slot_leases(), 0);
    }

    #[test]
    fn nested_with_on_same_store_keeps_one_cached_handle() {
        let store = Store::new(StoreConfig::new(1, 2, 1, 10));
        store.with(|outer| {
            outer.update(0, |v| v[0] += 1).unwrap();
            let inner = store.with(|h| h.update(0, |v| v[0] += 1).unwrap()[0]);
            assert_eq!(inner, 2);
        });
        assert_eq!(store.live_slot_leases(), 1, "only one handle stays cached");
        detach_current_thread();
        assert_eq!(store.live_slot_leases(), 0);
    }
}
